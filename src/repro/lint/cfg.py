"""Per-function control-flow graphs over ``ast``.

simlint's flow-sensitive rules (SIM006-SIM010, :mod:`repro.lint.flowrules`)
need to know *which definition of a name an expression actually reads* —
``t = time.time(); score += t`` is a determinism bug even though neither
line is one in isolation.  That question is answered by reaching
definitions over a control-flow graph, and this module builds the graph.

The CFG is deliberately lightweight: a function body becomes **blocks** of
:class:`Element`\\ s (one per evaluated statement-or-expression, each
carrying its name *defs* and the expressions it *uses*) joined by
successor edges.  Branches (``if``/``match``), loops (``for``/``while``
with ``break``/``continue``), ``with``, and ``try``/``except``/``finally``
are modelled; exception edges are over-approximated (every block of a
``try`` body may reach every handler), which can only make the downstream
analyses *more* conservative, never unsound for lint purposes.

Nested ``def``/``class`` bodies are *not* inlined — each gets its own CFG
via :func:`repro.lint.dataflow.analyze_module` — but the statement that
creates them is an :class:`Element` defining the name (which is exactly
what the pickle-boundary rule needs to spot a nested function escaping
into a pool submission).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator, Sequence

__all__ = ["Element", "Block", "CFG", "build_cfg", "element_defs", "element_uses"]


@dataclass(eq=False)  # identity-hashed: Definitions key on *which* element
class Element:
    """One evaluated unit: a simple statement, or a compound's header expr.

    ``defs`` are the names this element (re)binds, paired with the AST node
    the binding's *value* comes from (the assigned expression, the ``for``
    statement for loop targets, the ``FunctionDef`` for a nested def, or
    ``None`` for pure kills like ``del``).  ``uses`` are the expressions
    evaluated by the element, in evaluation order.
    """

    node: ast.AST
    defs: tuple[tuple[str, ast.AST | None], ...] = ()
    uses: tuple[ast.expr, ...] = ()

    @property
    def lineno(self) -> int:
        return getattr(self.node, "lineno", 0)


@dataclass
class Block:
    """A straight-line run of elements with a single entry."""

    block_id: int
    elements: list[Element] = field(default_factory=list)
    successors: set[int] = field(default_factory=set)
    predecessors: set[int] = field(default_factory=set)


class CFG:
    """The control-flow graph of one function (or module) body."""

    def __init__(self) -> None:
        self.blocks: dict[int, Block] = {}
        self._next_id = 0
        self.entry = self.new_block().block_id
        #: Synthetic sink reached by fall-through, ``return`` and ``raise``.
        self.exit = self.new_block().block_id

    def new_block(self) -> Block:
        block = Block(self._next_id)
        self.blocks[block.block_id] = block
        self._next_id += 1
        return block

    def add_edge(self, src: int, dst: int) -> None:
        self.blocks[src].successors.add(dst)
        self.blocks[dst].predecessors.add(src)

    def elements(self) -> Iterator[Element]:
        """Every element, in block-id order (stable, roughly source order)."""
        for block_id in sorted(self.blocks):
            yield from self.blocks[block_id].elements


# ----------------------------------------------------------------------
# Defs and uses of a single evaluated node
# ----------------------------------------------------------------------
def _target_names(target: ast.expr) -> Iterator[str]:
    """Plain names bound by an assignment target (attr/subscript excluded)."""
    stack = [target]
    while stack:
        node = stack.pop()
        if isinstance(node, ast.Name):
            yield node.id
        elif isinstance(node, (ast.Tuple, ast.List)):
            stack.extend(node.elts)
        elif isinstance(node, ast.Starred):
            stack.append(node.value)


def _target_use_exprs(target: ast.expr) -> Iterator[ast.expr]:
    """Expressions *read* while storing to a target (attr/subscript bases)."""
    stack = [target]
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.Tuple, ast.List)):
            stack.extend(node.elts)
        elif isinstance(node, ast.Starred):
            stack.append(node.value)
        elif isinstance(node, ast.Attribute):
            yield node.value
        elif isinstance(node, ast.Subscript):
            yield node.value
            yield node.slice


def _walrus_defs(exprs: Sequence[ast.expr]) -> Iterator[tuple[str, ast.AST | None]]:
    """``NamedExpr`` bindings anywhere in ``exprs`` (they bind in the
    enclosing function scope, even from inside a comprehension)."""
    for expr in exprs:
        for node in ast.walk(expr):
            if isinstance(node, ast.NamedExpr) and isinstance(node.target, ast.Name):
                yield node.target.id, node.value


def _element(
    node: ast.AST,
    defs: Sequence[tuple[str, ast.AST | None]] = (),
    uses: Sequence[ast.expr] = (),
) -> Element:
    all_defs = tuple(defs) + tuple(_walrus_defs(uses))
    return Element(node, all_defs, tuple(uses))


def make_element(stmt: ast.stmt) -> Element:
    """The :class:`Element` for one *simple* statement."""
    if isinstance(stmt, ast.Assign):
        defs = [(n, stmt.value) for t in stmt.targets for n in _target_names(t)]
        uses = [stmt.value]
        for target in stmt.targets:
            uses.extend(_target_use_exprs(target))
        return _element(stmt, defs, uses)
    if isinstance(stmt, ast.AugAssign):
        uses = [stmt.value]
        if isinstance(stmt.target, ast.Name):
            # x += v both reads and redefines x; the def's value is the
            # whole statement so taint merges target and value.
            read = ast.Name(id=stmt.target.id, ctx=ast.Load())
            ast.copy_location(read, stmt.target)
            uses.append(read)
            return _element(stmt, [(stmt.target.id, stmt)], uses)
        uses.extend(_target_use_exprs(stmt.target))
        return _element(stmt, [], uses)
    if isinstance(stmt, ast.AnnAssign):
        if stmt.value is None:
            return _element(stmt)
        defs = [(n, stmt.value) for n in _target_names(stmt.target)]
        uses = [stmt.value, *_target_use_exprs(stmt.target)]
        return _element(stmt, defs, uses)
    if isinstance(stmt, ast.Expr):
        return _element(stmt, [], [stmt.value])
    if isinstance(stmt, ast.Return):
        return _element(stmt, [], [stmt.value] if stmt.value else [])
    if isinstance(stmt, ast.Raise):
        uses = [e for e in (stmt.exc, stmt.cause) if e is not None]
        return _element(stmt, [], uses)
    if isinstance(stmt, ast.Assert):
        uses = [stmt.test] + ([stmt.msg] if stmt.msg else [])
        return _element(stmt, [], uses)
    if isinstance(stmt, ast.Delete):
        defs = [(n, None) for t in stmt.targets for n in _target_names(t)]
        return _element(stmt, defs, list(stmt.targets))
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        uses: list[ast.expr] = list(stmt.decorator_list)
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            uses.extend(d for d in stmt.args.defaults)
            uses.extend(d for d in stmt.args.kw_defaults if d is not None)
        else:
            uses.extend(stmt.bases)
            uses.extend(k.value for k in stmt.keywords)
        return _element(stmt, [(stmt.name, stmt)], uses)
    if isinstance(stmt, ast.Import):
        defs = [
            (alias.asname or alias.name.split(".")[0], stmt) for alias in stmt.names
        ]
        return _element(stmt, defs)
    if isinstance(stmt, ast.ImportFrom):
        defs = [
            (alias.asname or alias.name, stmt)
            for alias in stmt.names
            if alias.name != "*"
        ]
        return _element(stmt, defs)
    # Pass, Global, Nonlocal, Break, Continue (headers handled by builder)
    return _element(stmt)


def element_defs(element: Element) -> tuple[tuple[str, ast.AST | None], ...]:
    return element.defs


def element_uses(element: Element) -> tuple[ast.expr, ...]:
    return element.uses


# ----------------------------------------------------------------------
# Graph construction
# ----------------------------------------------------------------------
class _Builder:
    def __init__(self) -> None:
        self.cfg = CFG()
        #: (header_block, after_block) per enclosing loop, innermost last.
        self.loops: list[tuple[int, int]] = []

    # Each handler takes the id of the block control is in and returns the
    # id control falls out of, or None when the path terminated (return/
    # raise/break/continue).
    def build(self, body: Sequence[ast.stmt]) -> CFG:
        out = self._sequence(self.cfg.entry, body)
        if out is not None:
            self.cfg.add_edge(out, self.cfg.exit)
        return self.cfg

    def _sequence(self, current: int | None, body: Sequence[ast.stmt]) -> int | None:
        for stmt in body:
            if current is None:
                return None  # unreachable code after a terminator
            current = self._statement(current, stmt)
        return current

    def _statement(self, current: int, stmt: ast.stmt) -> int | None:
        cfg = self.cfg
        if isinstance(stmt, ast.If):
            cfg.blocks[current].elements.append(_element(stmt, [], [stmt.test]))
            after = cfg.new_block()
            then_entry = cfg.new_block()
            cfg.add_edge(current, then_entry.block_id)
            then_out = self._sequence(then_entry.block_id, stmt.body)
            if then_out is not None:
                cfg.add_edge(then_out, after.block_id)
            if stmt.orelse:
                else_entry = cfg.new_block()
                cfg.add_edge(current, else_entry.block_id)
                else_out = self._sequence(else_entry.block_id, stmt.orelse)
                if else_out is not None:
                    cfg.add_edge(else_out, after.block_id)
            else:
                cfg.add_edge(current, after.block_id)
            return after.block_id

        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            header = cfg.new_block()
            after = cfg.new_block()
            cfg.add_edge(current, header.block_id)
            if isinstance(stmt, ast.While):
                header.elements.append(_element(stmt, [], [stmt.test]))
            else:
                defs = [(n, stmt) for n in _target_names(stmt.target)]
                uses = [stmt.iter, *_target_use_exprs(stmt.target)]
                header.elements.append(_element(stmt, defs, uses))
            cfg.add_edge(header.block_id, after.block_id)  # zero iterations
            body_entry = cfg.new_block()
            cfg.add_edge(header.block_id, body_entry.block_id)
            self.loops.append((header.block_id, after.block_id))
            body_out = self._sequence(body_entry.block_id, stmt.body)
            self.loops.pop()
            if body_out is not None:
                cfg.add_edge(body_out, header.block_id)
            if stmt.orelse:
                else_out = self._sequence(after.block_id, stmt.orelse)
                if else_out is None:
                    return None
                return else_out
            return after.block_id

        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                defs = (
                    [(n, item.context_expr) for n in _target_names(item.optional_vars)]
                    if item.optional_vars is not None
                    else []
                )
                cfg.blocks[current].elements.append(
                    _element(stmt, defs, [item.context_expr])
                )
            return self._sequence(current, stmt.body)

        if isinstance(stmt, ast.Try):
            after = cfg.new_block()
            body_entry = cfg.new_block()
            cfg.add_edge(current, body_entry.block_id)
            before_ids = set(cfg.blocks)
            body_out = self._sequence(body_entry.block_id, stmt.body)
            body_ids = sorted({body_entry.block_id} | (set(cfg.blocks) - before_ids))
            handler_outs: list[int] = []
            for handler in stmt.handlers:
                h_entry = cfg.new_block()
                if handler.type is not None or handler.name is not None:
                    defs = [(handler.name, handler)] if handler.name else []
                    uses = [handler.type] if handler.type is not None else []
                    h_entry.elements.append(_element(handler, defs, uses))
                # Conservative: an exception may surface from any point of
                # the try body — including before any element ran, which is
                # the edge from `current` (the state at try entry).
                for block_id in [current, *body_ids]:
                    cfg.add_edge(block_id, h_entry.block_id)
                h_out = self._sequence(h_entry.block_id, handler.body)
                if h_out is not None:
                    handler_outs.append(h_out)
            if stmt.orelse and body_out is not None:
                body_out = self._sequence(body_out, stmt.orelse)
            exits = handler_outs + ([body_out] if body_out is not None else [])
            if stmt.finalbody:
                f_entry = cfg.new_block()
                for src in exits:
                    cfg.add_edge(src, f_entry.block_id)
                # An unhandled exception also runs the finally, carrying
                # partial-body state — join try entry and every body block.
                for block_id in [current, *body_ids]:
                    cfg.add_edge(block_id, f_entry.block_id)
                f_out = self._sequence(f_entry.block_id, stmt.finalbody)
                if f_out is None:
                    return None
                cfg.add_edge(f_out, after.block_id)
            else:
                if not exits:
                    return None
                for src in exits:
                    cfg.add_edge(src, after.block_id)
            return after.block_id

        if isinstance(stmt, ast.Match):
            cfg.blocks[current].elements.append(_element(stmt, [], [stmt.subject]))
            after = cfg.new_block()
            fell_through = False
            for case in stmt.cases:
                case_entry = cfg.new_block()
                cfg.add_edge(current, case_entry.block_id)
                defs = [
                    (n.name, case.pattern)
                    for n in ast.walk(case.pattern)
                    if isinstance(n, (ast.MatchAs, ast.MatchStar)) and n.name
                ]
                uses = [case.guard] if case.guard is not None else []
                case_entry.elements.append(_element(case, defs, uses))
                case_out = self._sequence(case_entry.block_id, case.body)
                if case_out is not None:
                    cfg.add_edge(case_out, after.block_id)
                    fell_through = True
            cfg.add_edge(current, after.block_id)  # no case matched
            return after.block_id if (fell_through or stmt.cases) else after.block_id

        if isinstance(stmt, (ast.Return, ast.Raise)):
            cfg.blocks[current].elements.append(make_element(stmt))
            cfg.add_edge(current, cfg.exit)
            return None

        if isinstance(stmt, ast.Break):
            if self.loops:
                cfg.add_edge(current, self.loops[-1][1])
            return None

        if isinstance(stmt, ast.Continue):
            if self.loops:
                cfg.add_edge(current, self.loops[-1][0])
            return None

        cfg.blocks[current].elements.append(make_element(stmt))
        return current


def build_cfg(body: Sequence[ast.stmt]) -> CFG:
    """Build the CFG of one function (or module) body."""
    return _Builder().build(body)
