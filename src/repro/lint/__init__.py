"""simlint: determinism/invariant static analysis for the repro tree.

Run as ``python -m repro.lint [paths...]`` or through
``tests/test_simlint.py`` (which also keeps the real tree clean in CI).
See :mod:`repro.lint.rules` for the syntactic rule set (SIM001-SIM005),
:mod:`repro.lint.flowrules` for the dataflow rules (SIM006-SIM010) built
on :mod:`repro.lint.cfg` / :mod:`repro.lint.dataflow`, and
:mod:`repro.lint.engine` for suppression and baseline syntax.
"""

from repro.lint.engine import (
    Finding,
    lint_file,
    lint_paths,
    lint_source,
    main,
)
from repro.lint.output import (
    apply_baseline,
    fingerprint,
    load_baseline,
    render_json,
    render_sarif,
    write_baseline,
)
from repro.lint.rules import RULES, RULES_BY_ID, Rule

__all__ = [
    "Finding",
    "Rule",
    "RULES",
    "RULES_BY_ID",
    "apply_baseline",
    "fingerprint",
    "lint_file",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "main",
    "render_json",
    "render_sarif",
    "write_baseline",
]
