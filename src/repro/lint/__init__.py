"""simlint: determinism/invariant static analysis for the repro tree.

Run as ``python -m repro.lint [paths...]`` or through
``tests/test_simlint.py`` (which also keeps the real tree clean in CI).
See :mod:`repro.lint.rules` for the rule set and
:mod:`repro.lint.engine` for suppression syntax.
"""

from repro.lint.engine import (
    Finding,
    lint_file,
    lint_paths,
    lint_source,
    main,
)
from repro.lint.rules import RULES, RULES_BY_ID, Rule

__all__ = [
    "Finding",
    "Rule",
    "RULES",
    "RULES_BY_ID",
    "lint_file",
    "lint_paths",
    "lint_source",
    "main",
]
