"""The runtime a scheduler *plans* with (the paper's R*).

Every policy resolves job runtimes through a :class:`RuntimeSource`:

- ``ActualRuntimeSource`` — R* = T, the paper's main configuration;
- ``RequestedRuntimeSource`` — R* = R, the paper's §6.4 configuration;
- ``PredictedRuntimeSource`` — R* = prediction, the future-work option,
  wrapping any :class:`~repro.predict.predictors.RuntimePredictor`.

A source may be *optimistic* (predicting less than the job actually runs);
the simulator stays sound because nothing is preempted — a misprediction
only distorts the planner's view, exactly as on a real system.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING

from repro.util.timeunits import MINUTE

if TYPE_CHECKING:  # pragma: no cover
    from repro.predict.predictors import RuntimePredictor
    from repro.simulator.job import Job


class RuntimeSource(abc.ABC):
    """Resolves the scheduler-visible runtime of a job."""

    #: Short label used in policy names, e.g. ``"T"``, ``"R"``, ``"pred"``.
    label: str = "?"

    #: Whether the source equals the actual runtime (lets the engine take
    #: the exact-release fast path).
    is_actual: bool = False

    @abc.abstractmethod
    def of(self, job: "Job") -> float:
        """The planning runtime for ``job`` (seconds, > 0)."""

    def observe_completion(self, job: "Job", now: float) -> None:
        """Hook: a job completed (predictors learn here).  Default no-op."""

    def believed_release(self, job: "Job", now: float) -> float:
        """When the scheduler believes a *running* job's nodes come back.

        Default: start + planning runtime.  Sources whose estimate a job
        can outlive (predictors) override this to revise upward once the
        job has run past its estimate.
        """
        assert job.start_time is not None
        return job.start_time + self.of(job)

    def reset(self) -> None:
        """Clear learned state between simulation runs.  Default no-op."""


class ActualRuntimeSource(RuntimeSource):
    """Perfect information: R* = T."""

    label = "T"
    is_actual = True

    def of(self, job: "Job") -> float:
        return job.runtime


class RequestedRuntimeSource(RuntimeSource):
    """User estimates: R* = R."""

    label = "R"

    def of(self, job: "Job") -> float:
        return float(job.requested_runtime)


class PredictedRuntimeSource(RuntimeSource):
    """History-based prediction: R* = predictor(job).

    Predictions are floored at one minute (a zero or negative planning
    runtime would break profile reservations) and learn from completions.
    """

    label = "pred"

    def __init__(self, predictor: "RuntimePredictor", floor: float = MINUTE) -> None:
        if floor <= 0:
            raise ValueError("floor must be > 0")
        self.predictor = predictor
        self.floor = floor

    def of(self, job: "Job") -> float:
        return max(self.predictor.predict(job), self.floor)

    def believed_release(self, job: "Job", now: float) -> float:
        """Revise the estimate upward once the job outlives it.

        Doubling until the believed release is in the future (capped at the
        requested runtime, which the machine enforces) is the standard
        correction for underprediction: without it an exceeded estimate
        reads as "done any moment", which parks the backfill reservation
        on the whole machine and starves backfilling.
        """
        assert job.start_time is not None
        estimate = self.of(job)
        cap = float(job.requested_runtime)
        while job.start_time + estimate <= now and estimate < cap:
            estimate = min(estimate * 2.0, cap)
        return job.start_time + estimate

    def observe_completion(self, job: "Job", now: float) -> None:
        self.predictor.observe(job)

    def reset(self) -> None:
        self.predictor.reset()


def resolve_runtime_source(
    source: RuntimeSource | bool | str | None,
) -> RuntimeSource:
    """Coerce the common spellings into a :class:`RuntimeSource`.

    ``True``/``"actual"``/``None`` → actual runtimes (the paper default);
    ``False``/``"requested"`` → user estimates; a :class:`RuntimeSource`
    passes through.
    """
    if source is None or source is True or source == "actual":
        return ActualRuntimeSource()
    if source is False or source == "requested":
        return RequestedRuntimeSource()
    if isinstance(source, RuntimeSource):
        return source
    raise ValueError(f"cannot interpret runtime source {source!r}")
