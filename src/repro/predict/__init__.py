"""Job-runtime prediction (the paper's first future-work item).

Schedulers plan with a runtime estimate R*.  The paper evaluates the two
endpoints — perfect knowledge (R* = T) and raw user requests (R* = R) —
and names "applying job runtime prediction techniques" as future work.
This package supplies that third option:

- :mod:`repro.predict.source` — the :class:`RuntimeSource` abstraction all
  policies plan through (actual / requested / predicted);
- :mod:`repro.predict.predictors` — history-based predictors in the style
  of Tsafrir-Etsion-Feitelson: per-user recent averages, EWMA, and a
  safety clamp into ``[floor, R]``.

Predictors learn on-line: the engine's ``on_finish`` hook feeds every
completion back through the policy's runtime source.
"""

from repro.predict.source import (
    ActualRuntimeSource,
    PredictedRuntimeSource,
    RequestedRuntimeSource,
    RuntimeSource,
    resolve_runtime_source,
)
from repro.predict.predictors import (
    ClampedPredictor,
    EwmaPredictor,
    RecentAveragePredictor,
    RequestedAsPrediction,
    RuntimePredictor,
    SafetyMarginPredictor,
)

__all__ = [
    "RuntimeSource",
    "ActualRuntimeSource",
    "RequestedRuntimeSource",
    "PredictedRuntimeSource",
    "resolve_runtime_source",
    "RuntimePredictor",
    "RecentAveragePredictor",
    "EwmaPredictor",
    "RequestedAsPrediction",
    "ClampedPredictor",
    "SafetyMarginPredictor",
]
