"""History-based runtime predictors.

The design follows the classic observation (Tsafrir, Etsion & Feitelson)
that a user's recent jobs are the best predictor of the next one's
runtime: predictors key their history on ``(user, node class)`` and fall
back first to the user's overall history, then to the job's requested
runtime when no history exists.

Predictors are deliberately *fallible* — they may under- or over-predict —
because studying scheduling under imperfect information is the point.
The :class:`ClampedPredictor` wrapper restores the real-system guarantee
that no plan exceeds the user's requested runtime.
"""

from __future__ import annotations

import abc
from collections import defaultdict, deque
from typing import TYPE_CHECKING

from repro.metrics.classes import node_class

if TYPE_CHECKING:  # pragma: no cover
    from repro.simulator.job import Job


def _user_key(job: "Job") -> str:
    return job.user if job.user is not None else "<anonymous>"


class RuntimePredictor(abc.ABC):
    """Predicts a job's runtime from previously observed completions."""

    name: str = "predictor"

    @abc.abstractmethod
    def predict(self, job: "Job") -> float:
        """Predicted runtime in seconds (> 0)."""

    @abc.abstractmethod
    def observe(self, job: "Job") -> None:
        """Learn from a completed job (``job.runtime`` is ground truth)."""

    def reset(self) -> None:
        """Forget all history."""


class RequestedAsPrediction(RuntimePredictor):
    """Degenerate baseline: predict the user's request (R* = R)."""

    name = "requested"

    def predict(self, job: "Job") -> float:
        return float(job.requested_runtime)

    def observe(self, job: "Job") -> None:  # nothing to learn
        pass


class RecentAveragePredictor(RuntimePredictor):
    """Average of the user's last ``k`` completions in the same node class.

    Falls back to the user's last ``k`` completions across classes, then
    to the requested runtime.  ``k = 2`` reproduces the well-known
    "average of the last two jobs" rule.
    """

    def __init__(self, k: int = 2) -> None:
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k
        self.name = f"avg-last-{k}"
        self._by_class: dict[tuple[str, int], deque] = defaultdict(
            lambda: deque(maxlen=self.k)
        )
        self._by_user: dict[str, deque] = defaultdict(lambda: deque(maxlen=self.k))

    def predict(self, job: "Job") -> float:
        user = _user_key(job)
        history = self._by_class.get((user, node_class(job.nodes)))
        if not history:
            history = self._by_user.get(user)
        if not history:
            return float(job.requested_runtime)
        return sum(history) / len(history)

    def observe(self, job: "Job") -> None:
        user = _user_key(job)
        self._by_class[(user, node_class(job.nodes))].append(job.runtime)
        self._by_user[user].append(job.runtime)

    def reset(self) -> None:
        self._by_class.clear()
        self._by_user.clear()


class EwmaPredictor(RuntimePredictor):
    """Exponentially weighted moving average per user.

    ``alpha`` is the weight of the newest observation.  Smoother than
    :class:`RecentAveragePredictor` on bursty users.
    """

    def __init__(self, alpha: float = 0.5) -> None:
        if not 0 < alpha <= 1:
            raise ValueError("alpha must be in (0, 1]")
        self.alpha = alpha
        self.name = f"ewma-{alpha:g}"
        self._state: dict[str, float] = {}

    def predict(self, job: "Job") -> float:
        user = _user_key(job)
        if user not in self._state:
            return float(job.requested_runtime)
        return self._state[user]

    def observe(self, job: "Job") -> None:
        user = _user_key(job)
        previous = self._state.get(user)
        if previous is None:
            self._state[user] = job.runtime
        else:
            self._state[user] = self.alpha * job.runtime + (1 - self.alpha) * previous

    def reset(self) -> None:
        self._state.clear()


class SafetyMarginPredictor(RuntimePredictor):
    """Scale another predictor's output by a safety factor.

    Raw history-based predictions *under*-predict roughly half the time,
    and an underprediction is far costlier to a reservation-based
    scheduler than the equivalent overprediction (the planner promises
    nodes it will not have).  A multiplicative margin — the standard
    remedy in the prediction literature — trades a little lost backfill
    opportunity for reliable plans.
    """

    def __init__(self, inner: RuntimePredictor, factor: float = 1.5) -> None:
        if factor < 1.0:
            raise ValueError("factor must be >= 1")
        self.inner = inner
        self.factor = factor
        self.name = f"margin({inner.name},x{factor:g})"

    def predict(self, job: "Job") -> float:
        return self.inner.predict(job) * self.factor

    def observe(self, job: "Job") -> None:
        self.inner.observe(job)

    def reset(self) -> None:
        self.inner.reset()


class ClampedPredictor(RuntimePredictor):
    """Clamp another predictor into ``[floor, requested_runtime]``.

    Real systems kill jobs at R, so planning beyond R is never useful;
    planning below ``floor`` destabilizes profile arithmetic.
    """

    def __init__(self, inner: RuntimePredictor, floor: float = 60.0) -> None:
        if floor <= 0:
            raise ValueError("floor must be > 0")
        self.inner = inner
        self.floor = floor
        self.name = f"clamped({inner.name})"

    def predict(self, job: "Job") -> float:
        raw = self.inner.predict(job)
        return min(max(raw, self.floor), float(job.requested_runtime))

    def observe(self, job: "Job") -> None:
        self.inner.observe(job)

    def reset(self) -> None:
        self.inner.reset()
