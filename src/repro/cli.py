"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``months``
    List the calibrated NCSA IA-64 months with their published statistics.
``run``
    Simulate one policy on one month (or an SWF trace) and print the
    paper's headline measures.
``figure``
    Regenerate one of the paper's figures (fig1 ... fig8) at the active
    experiment scale and print its series.
``tables``
    Regenerate Tables 3 and 4 from the synthetic traces.
``swf-convert``
    Export a synthetic month as a Standard Workload Format file.
``bench``
    Time the search hot path (both engines, bit-identity checked) and
    write the ``BENCH_search.json`` perf report.
``optgap``
    Measure DDS/LDS gap-to-optimal against the exact small-instance
    solver and write the ``BENCH_optgap.json`` quality report.
``profile``
    cProfile the first N decision points of a run and print the top-k
    cumulative hot spots (optionally dumping pstats) — the attribution
    tool behind the compiled-kernel work.
``serve``
    Run the resilient scheduler-as-a-service over JSONL stdio: register
    tenants, stream job arrivals, get SLO-bounded (possibly degraded,
    always labeled) decisions back (see ``docs/service.md``).
``loadgen``
    Benchmark the decision service with a deterministic multi-tenant
    closed-loop workload and write the ``BENCH_service.json`` report
    (throughput, p50/p99 latency, degradation counts).
``lint``
    Run simlint (``python -m repro.lint``) over the tree; all simlint
    flags pass through (see ``docs/linting.md``).

Policy specs accepted by ``run --policy``:

- ``fcfs-bf`` / ``lxf-bf`` / ``sjf-bf`` / ``lxfw-bf`` — priority backfill;
- ``lookahead`` / ``selective`` / ``slack`` — the §3.2 variants;
- ``dds/lxf/dynB`` (and any ``<algo>/<heuristic>/<bound>`` combination,
  bounds ``dynB`` or ``fixB<hours>h``) — search-based policies.

The grid-running commands (``figure``, ``claims``, ``reproduce``) accept
``--workers N`` (0 = all cores) to fan simulations across a process pool,
``--cache-dir``/``--no-cache`` to control the on-disk run cache, and
``--retries K`` to bound the per-cell retry budget; see
:mod:`repro.experiments.parallel`.  ``run`` additionally supports
``--checkpoint-dir``/``--checkpoint-every``/``--resume`` for
interrupt-safe long simulations (:mod:`repro.simulator.checkpoint`).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Sequence

from repro.backfill import BackfillPolicy, fcfs_backfill, lxf_backfill
from repro.backfill.priorities import PRIORITIES
from repro.backfill.variants import (
    LookaheadPolicy,
    SelectiveBackfillPolicy,
    SlackBackfillPolicy,
)
from repro.core.scheduler import make_policy
from repro.experiments.config import current_scale
from repro.experiments import figures as fig_mod
from repro.experiments.runner import PolicyRun, resume_run, simulate
from repro.metrics.excessive import excessive_wait_stats
from repro.simulator.policy import SchedulingPolicy
from repro.util.timeunits import HOUR
from repro.workloads.calibration import MONTH_ORDER, MONTHS
from repro.workloads.estimates import MenuEstimates, UniformFactorEstimates, apply_estimates
from repro.workloads.scaling import scale_to_load
from repro.workloads.swf import read_swf, write_swf
from repro.workloads.synthetic import generate_month

_FIGURES = {
    "fig1": fig_mod.fig1_tree,
    "fig2": fig_mod.fig2_fixed_bound_sensitivity,
    "fig3": fig_mod.fig3_original_load,
    "fig4": fig_mod.fig4_high_load,
    "fig5": fig_mod.fig5_job_classes,
    "fig6": fig_mod.fig6_node_limit,
    "fig7": fig_mod.fig7_algorithms,
    "fig8": fig_mod.fig8_requested_runtimes,
}

_ESTIMATES = {
    "menu": MenuEstimates,
    "uniform": UniformFactorEstimates,
}


class CliError(Exception):
    """User-facing CLI error (bad spec, unknown month, ...)."""


def parse_policy(
    spec: str, node_limit: int, runtime_source: bool, search_workers: int = 1
) -> SchedulingPolicy:
    """Build a policy from a CLI spec string (see module docstring).

    ``search_workers > 1`` runs each decision's search on the parallel
    engine (search-based specs only; backfill policies have no per-decision
    search to parallelize and ignore it).
    """
    lowered = spec.strip().lower()
    simple = {
        "fcfs-bf": lambda: fcfs_backfill(runtime_source),
        "lxf-bf": lambda: lxf_backfill(runtime_source),
        "lookahead": lambda: LookaheadPolicy(runtime_source),
        "selective": lambda: SelectiveBackfillPolicy(runtime_source=runtime_source),
        "slack": lambda: SlackBackfillPolicy(runtime_source=runtime_source),
    }
    if lowered in simple:
        return simple[lowered]()
    if lowered.endswith("-bf"):
        priority_name = lowered[:-3]
        if priority_name in PRIORITIES:
            return BackfillPolicy(
                PRIORITIES[priority_name], runtime_source=runtime_source
            )
        raise CliError(
            f"unknown backfill priority {priority_name!r}; "
            f"choose from {sorted(PRIORITIES)}"
        )
    parts = lowered.split("/")
    if len(parts) == 3:
        algorithm, heuristic, bound_spec = parts
        if bound_spec == "dynb":
            bound = None
        elif bound_spec.startswith("fixb") and bound_spec.endswith("h"):
            try:
                bound = float(bound_spec[4:-1]) * HOUR
            except ValueError:
                raise CliError(f"cannot parse bound {bound_spec!r}") from None
        else:
            raise CliError(
                f"unknown bound {bound_spec!r}; use dynB or fixB<hours>h"
            )
        try:
            return make_policy(
                algorithm,
                heuristic,
                bound=bound,
                node_limit=node_limit,
                runtime_source=runtime_source,
                search_workers=search_workers,
            )
        except ValueError as exc:
            raise CliError(str(exc)) from None
    raise CliError(
        f"cannot parse policy spec {spec!r}; examples: fcfs-bf, lxf-bf, "
        "lookahead, dds/lxf/dynB, lds/fcfs/fixB50h"
    )


def _add_execution_args(sub: argparse.ArgumentParser) -> None:
    """Attach the parallel-runner / run-cache flags to a subcommand."""
    sub.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="process-pool size for simulation grids (0 = all cores; "
        "default: REPRO_WORKERS or serial)",
    )
    sub.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="persist finished runs under DIR (default: REPRO_CACHE_DIR "
        "or .repro-cache when caching is enabled)",
    )
    sub.add_argument(
        "--no-cache",
        action="store_true",
        help="never read or write the run cache for this invocation",
    )
    sub.add_argument(
        "--retries",
        type=int,
        default=None,
        metavar="K",
        help="re-attempt each failed grid cell up to K times before "
        "reporting it (default: REPRO_RUN_RETRIES or 1)",
    )


def _configure_execution(args: argparse.Namespace) -> None:
    """Apply ``--workers``/``--cache-dir``/``--no-cache`` for this command.

    With no flags given the environment defaults (``REPRO_WORKERS``,
    ``REPRO_CACHE``, ``REPRO_CACHE_DIR``) stay in effect.
    """
    from repro.experiments import parallel
    from repro.experiments.cache import RunCache

    if (
        args.workers is None
        and args.cache_dir is None
        and not args.no_cache
        and args.retries is None
    ):
        return
    base = parallel.default_execution()
    workers = base.max_workers if args.workers is None else args.workers
    if args.no_cache:
        cache = None
    elif args.cache_dir is not None:
        cache = RunCache(args.cache_dir)
    else:
        cache = base.cache
    retries = base.retries if args.retries is None else args.retries
    parallel.configure(max_workers=workers, cache=cache, retries=retries)


def _load_workload(args: argparse.Namespace):
    if args.swf:
        workload = read_swf(args.swf)
    else:
        if args.month not in MONTHS:
            raise CliError(
                f"unknown month {args.month!r}; choose from {list(MONTH_ORDER)}"
            )
        workload = generate_month(args.month, seed=args.seed, scale=args.scale)
    if args.load is not None:
        workload = scale_to_load(workload, args.load)
    if args.estimates:
        model = _ESTIMATES[args.estimates]()
        workload = apply_estimates(workload, model, seed=args.seed)
    return workload


# ----------------------------------------------------------------------
# Subcommands
# ----------------------------------------------------------------------
def cmd_months(args: argparse.Namespace) -> int:
    print(f"{'month':>9} {'label':>6} {'jobs':>6} {'load':>6} {'runtime limit':>14}")
    for name in MONTH_ORDER:
        cal = MONTHS[name]
        print(
            f"{name:>9} {cal.label:>6} {cal.total_jobs:>6} "
            f"{cal.load * 100:>5.0f}% {cal.limits.max_runtime / HOUR:>12.0f} h"
        )
    return 0


def _print_run(run: PolicyRun, excess_threshold: float | None) -> None:
    print(f"workload : {run.workload_name} ({run.metrics.n_jobs} in-window jobs)")
    print(f"policy   : {run.policy_name}")
    print(f"load     : {run.offered_load:.2f} offered, {run.utilization:.2f} achieved")
    print(f"avg wait : {run.metrics.avg_wait_hours:.2f} h")
    print(f"max wait : {run.metrics.max_wait_hours:.2f} h")
    print(f"p98 wait : {run.metrics.p98_wait_hours:.2f} h")
    print(f"slowdown : {run.metrics.avg_bounded_slowdown:.2f} avg bounded")
    print(f"queue    : {run.avg_queue_length:.2f} jobs (time average)")
    if excess_threshold is not None:
        stats = excessive_wait_stats(run.jobs, excess_threshold * HOUR)
        print(
            f"excess   : {stats.total_hours:.2f} h total over "
            f"{stats.count} jobs (t={excess_threshold:g} h)"
        )


def cmd_run(args: argparse.Namespace) -> int:
    if args.resume:
        try:
            run = resume_run(args.resume)
        except (FileNotFoundError, OSError) as exc:
            raise CliError(str(exc)) from None
        _print_run(run, args.excess_threshold)
        return 0
    workload = _load_workload(args)
    policy = parse_policy(
        args.policy,
        args.node_limit,
        not args.requested_runtimes,
        search_workers=args.search_workers,
    )
    checkpoint = None
    if args.checkpoint_dir:
        from repro.simulator.checkpoint import CheckpointConfig

        try:
            checkpoint = CheckpointConfig(
                directory=args.checkpoint_dir,
                every_decisions=args.checkpoint_every,
            )
        except ValueError as exc:
            raise CliError(str(exc)) from None
    run = simulate(workload, policy, checkpoint=checkpoint)
    _print_run(run, args.excess_threshold)
    return 0


def cmd_figure(args: argparse.Namespace) -> int:
    _configure_execution(args)
    fig = _FIGURES[args.name]()
    print(fig.render())
    return 0


def cmd_tables(args: argparse.Namespace) -> int:
    print(fig_mod.table3_job_mix().render())
    print()
    print(fig_mod.table4_runtimes().render())
    return 0


def cmd_claims(args: argparse.Namespace) -> int:
    from repro.experiments.claims import build_context, evaluate_claims, render_claims

    _configure_execution(args)
    months = args.months or None
    if months:
        unknown = [m for m in months if m not in MONTHS]
        if unknown:
            raise CliError(f"unknown months {unknown}; choose from {list(MONTH_ORDER)}")
    context = build_context(current_scale(), months=months)
    results = evaluate_claims(context)
    print(render_claims(results))
    return 0 if all(r.passed for r in results) else 1


def cmd_gantt(args: argparse.Namespace) -> int:
    from repro.metrics.gantt import describe_schedule
    from repro.simulator.engine import Simulation

    if args.month not in MONTHS:
        raise CliError(
            f"unknown month {args.month!r}; choose from {list(MONTH_ORDER)}"
        )
    workload = generate_month(args.month, seed=args.seed, scale=args.scale)
    policy = parse_policy(args.policy, args.node_limit, True)
    result = Simulation(
        workload.fresh_jobs(), policy, workload.cluster, window=workload.window
    ).run()
    print(f"{workload.name} under {policy.name}:")
    print(describe_schedule(result.jobs_in_window(), workload.cluster.nodes))
    return 0


def cmd_reproduce(args: argparse.Namespace) -> int:
    from repro.experiments.report import reproduce_all

    _configure_execution(args)
    try:
        report = reproduce_all(
            args.out,
            only=args.only,
            with_claims=not args.no_claims,
            progress=print,
        )
    except ValueError as exc:
        raise CliError(str(exc)) from None
    print(f"report written to {report}")
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    from repro.experiments.bench import check_bench, run_bench, write_bench

    if args.check:
        # Smoke mode: re-measure and judge against the committed report's
        # tolerance band — nothing is overwritten (mirrors optgap --check).
        committed_path = Path(args.out)
        if not committed_path.exists():
            raise CliError(f"no committed report at {committed_path} to check against")
        committed = json.loads(committed_path.read_text())
        fresh = run_bench(
            quick=args.quick,
            repeats=args.repeats,
            search_workers=args.search_workers,
            progress=print,
        )
        failures = check_bench(fresh, committed)
        for failure in failures:
            print(f"TOLERANCE FAIL: {failure}")
        if failures:
            return 1
        print(f"within tolerance of {committed_path}")
        return 0
    report = write_bench(
        args.out,
        quick=args.quick,
        repeats=args.repeats,
        search_workers=args.search_workers,
        progress=print,
    )
    # The v2 speedups dict holds three families; the fast/reference keys
    # are the ones without a ":variant" suffix.
    worst = min(v for k, v in report["speedups"].items() if ":" not in k)
    print(f"wrote {args.out} (worst fast/reference speedup {worst:.2f}x)")
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    import pstats

    from repro.experiments.profiling import profile_decisions

    workload = _load_workload(args)
    policy = parse_policy(
        args.policy,
        args.node_limit,
        not args.requested_runtimes,
        search_workers=args.search_workers,
    )
    try:
        profiler, ran = profile_decisions(workload, policy, args.decisions)
    except ValueError as exc:
        raise CliError(str(exc)) from None
    print(
        f"profiled {ran} decision point(s) of {policy.name} "
        f"on {workload.name} (requested {args.decisions})"
    )
    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.sort_stats("cumulative")
    stats.print_stats(args.top)
    if args.out:
        stats.dump_stats(args.out)
        print(f"pstats dump written to {args.out} (open with pstats/snakeviz)")
    return 0


def cmd_optgap(args: argparse.Namespace) -> int:
    from repro.experiments.optgap import check_report, run_optgap, write_optgap

    if args.check:
        # Smoke mode: re-measure (quick by default) and judge against the
        # committed report's tolerance block — nothing is overwritten.
        committed_path = Path(args.out)
        if not committed_path.exists():
            raise CliError(f"no committed report at {committed_path} to check against")
        committed = json.loads(committed_path.read_text())
        fresh = run_optgap(
            quick=args.quick, n_instances=args.instances, seed=args.seed,
            progress=print,
        )
        failures = check_report(fresh, committed)
        for failure in failures:
            print(f"TOLERANCE FAIL: {failure}")
        if failures:
            return 1
        print(f"within tolerance of {committed_path}")
        return 0
    report = write_optgap(
        args.out,
        quick=args.quick,
        n_instances=args.instances,
        seed=args.seed,
        progress=print,
    )
    top = report["budgets"][-1]
    fracs = ", ".join(
        f"{r['algorithm']}/{r['heuristic']} {r['frac_optimal']:.0%}"
        for r in report["rows"]
        if r["node_limit"] == top
    )
    print(f"wrote {args.out} (optimal at L={top}: {fracs})")
    return 0


def cmd_loadgen(args: argparse.Namespace) -> int:
    from repro.experiments.loadgen import check_loadgen, run_loadgen, write_loadgen

    if args.check:
        # Smoke mode: re-measure and judge against the committed report's
        # tolerance band — nothing is overwritten (mirrors bench --check).
        committed_path = Path(args.out)
        if not committed_path.exists():
            raise CliError(f"no committed report at {committed_path} to check against")
        committed = json.loads(committed_path.read_text())
        fresh = run_loadgen(
            quick=args.quick,
            tenants=args.tenants,
            requests=args.requests,
            seed=args.seed,
            deadline=args.deadline,
        )
        failures = check_loadgen(fresh, committed)
        for failure in failures:
            print(f"TOLERANCE FAIL: {failure}")
        if failures:
            return 1
        print(f"within tolerance of {committed_path}")
        return 0
    report = write_loadgen(
        args.out,
        quick=args.quick,
        tenants=args.tenants,
        requests=args.requests,
        seed=args.seed,
        deadline=args.deadline,
    )
    results = report["results"]
    lat = results["latency_seconds"]
    print(
        f"wrote {args.out} ({results['total_requests']} requests, "
        f"{results['throughput_rps']:,.1f} req/s, "
        f"p50 {lat['p50'] * 1000:.1f}ms, p99 {lat['p99'] * 1000:.1f}ms, "
        f"{results['degraded_responses']} degraded)"
    )
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """JSONL-over-stdio decision service (see ``docs/service.md``).

    One JSON object per input line; one JSON response object per line on
    stdout.  ``{"op": "register", "tenant": ...}`` admits a tenant,
    ``{"op": "decide", ...}`` (a :class:`DecisionRequest` payload) asks
    for decisions, ``{"op": "close"}`` (or EOF) shuts down cleanly.
    """
    import asyncio

    from repro.service.api import DecisionRequest, TenantSLO
    from repro.service.service import (
        AdmissionError,
        DecisionService,
        ServiceConfig,
    )
    from repro.service.tenant import TenantError

    config = ServiceConfig(
        snapshot_root=args.snapshot_dir,
        snapshot_every_decisions=args.snapshot_every,
    )
    service = DecisionService(
        lambda tenant_id: parse_policy(args.policy, args.node_limit, True),
        config=config,
    )

    def emit(payload: dict) -> None:
        print(json.dumps(payload), flush=True)

    async def serve() -> int:
        loop = asyncio.get_running_loop()
        async with service:
            while True:
                line = await loop.run_in_executor(None, sys.stdin.readline)
                if not line:
                    break
                line = line.strip()
                if not line:
                    continue
                try:
                    message = json.loads(line)
                    op = message.get("op", "decide")
                    if op == "close":
                        break
                    if op == "register":
                        slo = (
                            TenantSLO.from_dict(message["slo"])
                            if "slo" in message
                            else None
                        )
                        service.register_tenant(message["tenant"], slo=slo)
                        emit({"tenant": message["tenant"], "status": "registered"})
                        continue
                    if op != "decide":
                        emit({"status": "error", "error": f"unknown op {op!r}"})
                        continue
                    request = DecisionRequest.from_dict(message)
                    response = await service.submit(request)
                    emit(response.to_dict())
                except (AdmissionError, TenantError, KeyError, ValueError) as exc:
                    emit({"status": "error", "error": str(exc)})
        return 0

    return asyncio.run(serve())


def cmd_lint(args: argparse.Namespace) -> int:
    from repro.lint import main as lint_main

    forwarded: list[str] = []
    if args.list_rules:
        forwarded.append("--list-rules")
    if args.format != "text":
        forwarded += ["--format", args.format]
    if args.out:
        forwarded += ["--out", args.out]
    if args.baseline:
        forwarded += ["--baseline", args.baseline]
    if args.no_baseline:
        forwarded.append("--no-baseline")
    if args.write_baseline:
        forwarded += ["--write-baseline", args.write_baseline]
    return lint_main(forwarded + list(args.paths))


def cmd_swf_convert(args: argparse.Namespace) -> int:
    if args.month not in MONTHS:
        raise CliError(
            f"unknown month {args.month!r}; choose from {list(MONTH_ORDER)}"
        )
    workload = generate_month(args.month, seed=args.seed, scale=args.scale)
    write_swf(
        workload,
        args.output,
        comments=[f"synthetic month {args.month}, seed {args.seed}, scale {args.scale}"],
    )
    print(f"wrote {len(workload.jobs)} jobs to {args.output}")
    return 0


# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Search-based job scheduling (CLUSTER 2005) reproduction",
    )
    parser.add_argument(
        "--sanitize",
        action="store_true",
        help="enable debug-mode invariant checking for every simulation "
        "(equivalent to REPRO_SANITIZE=1; goes before the subcommand)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("months", help="list the calibrated months").set_defaults(
        func=cmd_months
    )

    run = sub.add_parser("run", help="simulate one policy on one workload")
    run.add_argument("--month", default="2003-07", help="calibrated month name")
    run.add_argument("--swf", default=None, help="SWF trace file instead of a month")
    run.add_argument("--policy", default="dds/lxf/dynB", help="policy spec")
    run.add_argument("--seed", type=int, default=2005)
    run.add_argument("--scale", type=float, default=0.1, help="job-count scale")
    run.add_argument("--load", type=float, default=None, help="target offered load")
    run.add_argument("--node-limit", type=int, default=1000, help="search budget L")
    run.add_argument(
        "--requested-runtimes",
        action="store_true",
        help="plan with R* = R instead of R* = T",
    )
    run.add_argument(
        "--estimates",
        choices=sorted(_ESTIMATES),
        default=None,
        help="synthesize user runtime estimates with this model",
    )
    run.add_argument(
        "--excess-threshold",
        type=float,
        default=None,
        help="also report excessive wait beyond this many hours",
    )
    run.add_argument(
        "--search-workers",
        type=int,
        default=1,
        metavar="N",
        help="fan each decision's search across N worker processes "
        "(engine='parallel'; results are invariant to N)",
    )
    run.add_argument(
        "--checkpoint-dir",
        default=None,
        metavar="DIR",
        help="snapshot the simulation into DIR so an interrupted run can "
        "be finished with --resume DIR",
    )
    run.add_argument(
        "--checkpoint-every",
        type=int,
        default=256,
        metavar="N",
        help="decisions between snapshots (default 256)",
    )
    run.add_argument(
        "--resume",
        default=None,
        metavar="DIR",
        help="resume the newest usable checkpoint under DIR instead of "
        "starting a run (other workload/policy flags are ignored)",
    )
    run.set_defaults(func=cmd_run)

    figure = sub.add_parser("figure", help="regenerate one paper figure")
    figure.add_argument("name", choices=sorted(_FIGURES))
    _add_execution_args(figure)
    figure.set_defaults(func=cmd_figure)

    sub.add_parser("tables", help="regenerate Tables 3 and 4").set_defaults(
        func=cmd_tables
    )

    claims = sub.add_parser(
        "claims", help="evaluate the reproduction certificate"
    )
    claims.add_argument(
        "--months",
        nargs="*",
        default=None,
        help="restrict to these months (default: all ten)",
    )
    _add_execution_args(claims)
    claims.set_defaults(func=cmd_claims)

    gantt = sub.add_parser("gantt", help="render a schedule as a text Gantt chart")
    gantt.add_argument("--month", default="2003-06")
    gantt.add_argument("--policy", default="dds/lxf/dynB")
    gantt.add_argument("--seed", type=int, default=2005)
    gantt.add_argument("--scale", type=float, default=0.02)
    gantt.add_argument("--node-limit", type=int, default=200)
    gantt.add_argument("--width", type=int, default=72)
    gantt.set_defaults(func=cmd_gantt)

    reproduce = sub.add_parser(
        "reproduce", help="regenerate every table, figure and claim to a directory"
    )
    reproduce.add_argument("--out", required=True, help="output directory")
    reproduce.add_argument(
        "--only",
        nargs="*",
        default=None,
        help="subset of artifacts (table3 table4 fig1 ... fig8)",
    )
    reproduce.add_argument(
        "--no-claims", action="store_true", help="skip the claims certificate"
    )
    _add_execution_args(reproduce)
    reproduce.set_defaults(func=cmd_reproduce)

    bench = sub.add_parser(
        "bench", help="time the search hot path and write BENCH_search.json"
    )
    bench.add_argument(
        "--quick",
        action="store_true",
        help="skip L=100K (CI smoke mode; report marks quick=true)",
    )
    bench.add_argument(
        "--repeats", type=int, default=3, help="timing repeats per config (best-of)"
    )
    bench.add_argument(
        "--out", default="BENCH_search.json", help="report path (default: repo root)"
    )
    bench.add_argument(
        "--search-workers",
        type=int,
        default=4,
        metavar="N",
        help="worker count for the parallel-engine rows (bit-identity "
        "against the fast engine is asserted per config)",
    )
    bench.add_argument(
        "--check",
        action="store_true",
        help="re-measure and verify against the committed --out report's "
        "tolerance band instead of overwriting it (exit 1 on violation)",
    )
    bench.set_defaults(func=cmd_bench)

    profile = sub.add_parser(
        "profile",
        help="cProfile the first N decisions of a run (hot-spot attribution)",
        description="Simulate a policy and profile its first N decision "
        "points: print the top-K cumulative hot spots and optionally dump "
        "pstats for offline analysis — the attribution tool for deciding "
        "what to compile next (docs/performance.md).",
    )
    profile.add_argument("--month", default="2003-07", help="calibrated month name")
    profile.add_argument("--swf", default=None, help="SWF trace file instead of a month")
    profile.add_argument("--policy", default="dds/lxf/dynB", help="policy spec")
    profile.add_argument("--seed", type=int, default=2005)
    profile.add_argument("--scale", type=float, default=0.1, help="job-count scale")
    profile.add_argument("--load", type=float, default=None, help="target offered load")
    profile.add_argument("--node-limit", type=int, default=1000, help="search budget L")
    profile.add_argument(
        "--requested-runtimes",
        action="store_true",
        help="plan with R* = R instead of R* = T",
    )
    profile.add_argument(
        "--estimates",
        choices=sorted(_ESTIMATES),
        default=None,
        help="synthesize user runtime estimates with this model",
    )
    profile.add_argument(
        "--search-workers",
        type=int,
        default=1,
        metavar="N",
        help="fan each decision's search across N worker processes",
    )
    profile.add_argument(
        "--decisions",
        type=int,
        default=50,
        metavar="N",
        help="profile the first N decision points (default 50)",
    )
    profile.add_argument(
        "--top",
        type=int,
        default=20,
        metavar="K",
        help="print the top K functions by cumulative time (default 20)",
    )
    profile.add_argument(
        "--out",
        default=None,
        metavar="FILE",
        help="also dump raw pstats to FILE for offline analysis",
    )
    profile.set_defaults(func=cmd_profile)

    optgap = sub.add_parser(
        "optgap",
        help="measure search gap-to-optimal and write BENCH_optgap.json",
    )
    optgap.add_argument(
        "--quick",
        action="store_true",
        help="fewer instances and budgets (CI smoke mode; report marks "
        "quick=true)",
    )
    optgap.add_argument(
        "--out", default="BENCH_optgap.json", help="report path (default: repo root)"
    )
    optgap.add_argument(
        "--instances",
        type=int,
        default=None,
        metavar="N",
        help="override the instance count (default 24, or 8 with --quick)",
    )
    optgap.add_argument("--seed", type=int, default=2005)
    optgap.add_argument(
        "--check",
        action="store_true",
        help="re-measure and verify against the committed --out report's "
        "tolerance block instead of overwriting it (exit 1 on violation)",
    )
    optgap.set_defaults(func=cmd_optgap)

    loadgen = sub.add_parser(
        "loadgen",
        help="benchmark the decision service and write BENCH_service.json",
        description="Drive the scheduler-as-a-service stack with a "
        "deterministic multi-tenant closed-loop workload and record "
        "throughput and p50/p99 decision latency (docs/service.md).",
    )
    loadgen.add_argument(
        "--quick",
        action="store_true",
        help="fewer tenants/requests (CI smoke mode; report marks quick=true)",
    )
    loadgen.add_argument(
        "--out", default="BENCH_service.json", help="report path (default: repo root)"
    )
    loadgen.add_argument(
        "--tenants", type=int, default=None, help="override the tenant count"
    )
    loadgen.add_argument(
        "--requests", type=int, default=None, help="requests per tenant"
    )
    loadgen.add_argument("--seed", type=int, default=2005)
    loadgen.add_argument(
        "--deadline",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help="per-request SLO deadline (default 2.0)",
    )
    loadgen.add_argument(
        "--check",
        action="store_true",
        help="re-measure and verify against the committed --out report's "
        "tolerance band instead of overwriting it (exit 1 on violation)",
    )
    loadgen.set_defaults(func=cmd_loadgen)

    serve = sub.add_parser(
        "serve",
        help="run the decision service over JSONL stdio",
        description="Read JSON requests line by line from stdin and write "
        "one JSON response per line to stdout; see docs/service.md for "
        "the register/decide/close protocol and the SLO semantics.",
    )
    serve.add_argument("--policy", default="dds/lxf/dynB", help="policy spec")
    serve.add_argument("--node-limit", type=int, default=1000, help="search budget L")
    serve.add_argument(
        "--snapshot-dir",
        default=None,
        metavar="DIR",
        help="persist tenant snapshots under DIR (enables crash recovery)",
    )
    serve.add_argument(
        "--snapshot-every",
        type=int,
        default=64,
        metavar="N",
        help="snapshot a tenant every N decisions (default 64)",
    )
    serve.set_defaults(func=cmd_serve)

    lint = sub.add_parser(
        "lint",
        help="run simlint (determinism/invariant static analysis)",
        description="Thin wrapper over `python -m repro.lint`; flags pass "
        "through unchanged (see docs/linting.md).",
    )
    lint.add_argument(
        "paths", nargs="*", default=["src"], help="files/directories (default: src)"
    )
    lint.add_argument("--list-rules", action="store_true")
    lint.add_argument("--format", choices=("text", "json", "sarif"), default="text")
    lint.add_argument("--out", default=None, metavar="FILE")
    lint.add_argument("--baseline", default=None, metavar="FILE")
    lint.add_argument("--no-baseline", action="store_true")
    lint.add_argument("--write-baseline", default=None, metavar="FILE")
    lint.set_defaults(func=cmd_lint)

    convert = sub.add_parser("swf-convert", help="export a synthetic month as SWF")
    convert.add_argument("--month", required=True)
    convert.add_argument("--output", required=True)
    convert.add_argument("--seed", type=int, default=2005)
    convert.add_argument("--scale", type=float, default=1.0)
    convert.set_defaults(func=cmd_swf_convert)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.sanitize:
        from repro.util.sanitize import set_sanitize

        set_sanitize(True)
    try:
        return args.func(args)
    except CliError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
