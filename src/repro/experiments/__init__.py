"""Experiment harness: month x policy matrices and per-figure reproductions.

- :mod:`repro.experiments.runner` — run one policy on one workload and
  collect every measure the paper reports; run whole matrices.
- :mod:`repro.experiments.parallel` — fan a grid of picklable run specs
  across a process pool with per-run error capture and a serial fallback.
- :mod:`repro.experiments.cache` — content-addressed on-disk cache that
  lets re-runs skip already-computed grid cells.
- :mod:`repro.experiments.config` — bench-scale vs. paper-scale settings
  (the ``REPRO_FULL_SCALE=1`` switch).
- :mod:`repro.experiments.figures` — one function per table/figure of the
  evaluation, returning printable series (see benchmarks/).
"""

from repro.experiments.runner import PolicyRun, run_matrix, simulate
from repro.experiments.cache import RunCache
from repro.experiments.config import ExperimentScale, current_scale
from repro.experiments.parallel import (
    GridOutcome,
    PolicySpec,
    RunError,
    RunSpec,
    WorkloadSpec,
    configure,
    run_all,
    run_grid,
    session_stats,
)
from repro.experiments.figures import (
    FigureSeries,
    fig1_tree,
    fig2_fixed_bound_sensitivity,
    fig3_original_load,
    fig4_high_load,
    fig5_job_classes,
    fig6_node_limit,
    fig7_algorithms,
    fig8_requested_runtimes,
    table3_job_mix,
    table4_runtimes,
)

__all__ = [
    "PolicyRun",
    "simulate",
    "run_matrix",
    "ExperimentScale",
    "current_scale",
    "FigureSeries",
    "fig1_tree",
    "fig2_fixed_bound_sensitivity",
    "fig3_original_load",
    "fig4_high_load",
    "fig5_job_classes",
    "fig6_node_limit",
    "fig7_algorithms",
    "fig8_requested_runtimes",
    "table3_job_mix",
    "table4_runtimes",
]
