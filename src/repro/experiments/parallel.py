"""Process-pool experiment executor with a deterministic run cache.

The paper's evaluation is a grid of independent (workload, policy)
simulations, which makes it embarrassingly parallel: this module fans a
list of picklable :class:`RunSpec` cells across ``os.cpu_count()`` worker
processes and layers the content-addressed :class:`~repro.experiments
.cache.RunCache` on top, so a figure grid is only ever simulated once per
spec — and the first time, as wide as the hardware allows.

Design constraints, in order:

1. **Bit-identical results.**  A worker resolves its workload from the
   same deterministic generator inputs the serial path uses and installs a
   per-run :class:`~repro.util.rng.RngStream` derived from the spec hash
   (never the global RNG state), so ``max_workers=N`` produces exactly the
   metrics of ``max_workers=1`` — asserted by
   ``tests/test_parallel_runner.py``.
2. **Failure isolation.**  A run that raises returns a structured
   :class:`RunError` (type, message, traceback) in its grid slot instead
   of killing sibling runs.
3. **Graceful degradation.**  ``max_workers=1`` and non-picklable specs
   (e.g. lambda policy factories) run serially in-process through the
   identical code path; nothing requires a pool.
4. **Bounded self-healing.**  Failed cells are retried up to a per-run
   retry budget (``retries=`` / ``REPRO_RUN_RETRIES``, default 1) — runs
   are deterministic, so a retry only helps against *transient* failures
   (a broken process pool, an interrupted worker), which is exactly the
   class worth absorbing.  Every failure, recovered or not, is recorded
   in the grid's :class:`FailureLedger`, the machine-readable account of
   what failed, how often it was attempted, and why.

``run_grid`` is the primitive; ``run_all`` is the figure/claims-facing
wrapper that honours the session-wide :class:`ExecutionConfig` (set by
the CLI's ``--workers``/``--no-cache`` flags, ``REPRO_WORKERS``/
``REPRO_CACHE`` env vars, or ``benchmarks/conftest.py``).
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from dataclasses import asdict, dataclass, field
from functools import lru_cache
from pathlib import Path
from typing import Any, Callable, Iterable, Sequence

from repro.experiments.cache import CACHE_VERSION, RunCache
from repro.experiments.runner import PolicyRun, simulate
from repro.util.rng import derive_run_stream, set_run_stream
from repro.simulator.policy import SchedulingPolicy
from repro.workloads.estimates import (
    MenuEstimates,
    UniformFactorEstimates,
    apply_estimates,
)
from repro.workloads.scaling import scale_to_load
from repro.workloads.synthetic import generate_month
from repro.workloads.trace import Workload

_ESTIMATE_MODELS = {"menu": MenuEstimates, "uniform": UniformFactorEstimates}


# ----------------------------------------------------------------------
# Picklable run specs
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class WorkloadSpec:
    """Deterministic recipe for a synthetic workload.

    Cheap to pickle (a few scalars instead of thousands of jobs); workers
    rebuild and memoize the workload locally.  ``build()`` applies the
    same pipeline the figures use: generate, then scale to ``load``, then
    synthesize runtime ``estimates`` (menu/uniform) — order matters.
    """

    month: str
    seed: int = 2005
    scale: float = 1.0
    load: float | None = None
    estimates: str | None = None
    estimates_seed: int = 0

    def __post_init__(self) -> None:
        if self.estimates is not None and self.estimates not in _ESTIMATE_MODELS:
            raise ValueError(
                f"unknown estimate model {self.estimates!r}; "
                f"choose from {sorted(_ESTIMATE_MODELS)}"
            )

    @property
    def name(self) -> str:
        return self.month

    def build(self) -> Workload:
        return _build_workload(self)


@lru_cache(maxsize=32)
def _build_workload(spec: WorkloadSpec) -> Workload:
    """Per-process workload memo: a month is generated once per worker."""
    workload = generate_month(spec.month, seed=spec.seed, scale=spec.scale)
    if spec.load is not None:
        workload = scale_to_load(workload, spec.load)
    if spec.estimates is not None:
        model = _ESTIMATE_MODELS[spec.estimates]()
        workload = apply_estimates(workload, model, seed=spec.estimates_seed)
    return workload


@dataclass(frozen=True)
class PolicySpec:
    """Picklable policy description using the CLI spec grammar.

    ``spec`` accepts everything ``repro run --policy`` does: ``fcfs-bf``,
    ``lxf-bf``, ``lookahead``, ``selective``, ``dds/lxf/dynB``,
    ``lds/fcfs/fixB50h``, ...  ``node_limit`` only matters for search
    specs; pass 0 for backfill policies so cache keys don't fragment.
    ``search_workers > 1`` runs each decision's search on the parallel
    engine — the results (and cache content) are invariant to it, but it
    does enter the cache key, so sweeps should pick one value and stick
    with it.
    """

    spec: str
    node_limit: int = 1000
    use_actual_runtime: bool = True
    search_workers: int = 1

    def build(self) -> SchedulingPolicy:
        from repro.cli import parse_policy  # deferred: cli imports experiments

        return parse_policy(
            self.spec,
            self.node_limit,
            self.use_actual_runtime,
            search_workers=self.search_workers,
        )


#: Alternative to :class:`PolicySpec`: any zero-argument policy factory.
PolicyFactory = Callable[[], SchedulingPolicy]


@dataclass(frozen=True)
class RunSpec:
    """One grid cell: a workload and the policy to simulate on it.

    ``workload`` may be a :class:`WorkloadSpec` (preferred — cheap to ship
    to workers, cacheable) or a concrete :class:`Workload`.  ``policy``
    may be a :class:`PolicySpec` or any factory callable; factory-based
    cells are never cached and fall back to serial execution when the
    factory cannot be pickled.
    """

    workload: "WorkloadSpec | Workload"
    policy: "PolicySpec | PolicyFactory"
    label: str | None = None

    @property
    def workload_name(self) -> str:
        return self.workload.name

    @property
    def policy_key(self) -> str:
        if self.label is not None:
            return self.label
        if isinstance(self.policy, PolicySpec):
            return self.policy.spec
        return getattr(self.policy, "__name__", repr(self.policy))


@dataclass(frozen=True)
class RunError:
    """Structured record of one failed run; siblings are unaffected."""

    workload_name: str
    policy_key: str
    error_type: str
    message: str
    traceback: str

    def __str__(self) -> str:
        return (
            f"{self.workload_name}/{self.policy_key}: "
            f"{self.error_type}: {self.message}"
        )


@dataclass(frozen=True)
class FailureRecord:
    """One grid cell's failure history across its retry attempts."""

    index: int
    workload_name: str
    policy_key: str
    #: Total executions of the cell (first attempt + retries).
    attempts: int
    #: Whether a retry eventually produced a :class:`PolicyRun`.
    recovered: bool
    #: The error of every *failed* attempt, in order.
    errors: tuple[RunError, ...]


@dataclass
class FailureLedger:
    """Machine-readable account of everything that failed in a grid.

    A grid under faults completes with partial results; this ledger is
    the other half of the contract — a durable, structured record of
    which cells failed, how many attempts each consumed, and the error of
    every failed attempt.  ``write()`` persists it atomically as JSON.
    """

    retry_budget: int
    records: list[FailureRecord] = field(default_factory=list)

    def __bool__(self) -> bool:
        return bool(self.records)

    @property
    def recovered(self) -> list[FailureRecord]:
        return [r for r in self.records if r.recovered]

    @property
    def unrecovered(self) -> list[FailureRecord]:
        return [r for r in self.records if not r.recovered]

    def to_payload(self) -> dict[str, Any]:
        return {
            "retry_budget": self.retry_budget,
            "failed_cells": len(self.records),
            "recovered": len(self.recovered),
            "unrecovered": len(self.unrecovered),
            "records": [
                {
                    "index": r.index,
                    "workload": r.workload_name,
                    "policy": r.policy_key,
                    "attempts": r.attempts,
                    "recovered": r.recovered,
                    "errors": [
                        {"type": e.error_type, "message": e.message}
                        for e in r.errors
                    ],
                }
                for r in self.records
            ],
        }

    def write(self, path: "str | Path") -> "Path":
        """Atomically persist the ledger as JSON; returns the path."""
        from repro.util.atomio import atomic_write_json

        return atomic_write_json(path, self.to_payload(), indent=2, sort_keys=True)


# ----------------------------------------------------------------------
# Cache keys
# ----------------------------------------------------------------------
def _workload_fingerprint(workload: "WorkloadSpec | Workload") -> dict[str, Any]:
    if isinstance(workload, WorkloadSpec):
        return {"kind": "synthetic", **asdict(workload)}
    digest = hashlib.sha256()
    for j in workload.jobs:
        digest.update(
            f"{j.job_id},{j.submit_time!r},{j.nodes},"
            f"{j.runtime!r},{j.requested_runtime!r},{j.user}\n".encode()
        )
    limits = workload.cluster.limits
    return {
        "kind": "trace",
        "name": workload.name,
        "window": list(workload.window),
        "nodes": workload.cluster.nodes,
        "max_nodes": limits.max_nodes,
        "max_runtime": limits.max_runtime,
        "jobs_sha": digest.hexdigest(),
        "n_jobs": len(workload.jobs),
    }


def cache_payload(spec: RunSpec) -> dict[str, Any] | None:
    """The spec's full cache-key contents, or ``None`` if uncacheable.

    A cell is cacheable iff its policy is a declarative :class:`PolicySpec`
    (an opaque factory cannot be fingerprinted safely).  The payload hashes
    the workload recipe (or trace content), the complete policy config, and
    :data:`~repro.experiments.cache.CACHE_VERSION` for simulation
    semantics.
    """
    if not isinstance(spec.policy, PolicySpec):
        return None
    return {
        "version": CACHE_VERSION,
        "workload": _workload_fingerprint(spec.workload),
        "policy": asdict(spec.policy),
    }


def cache_key(spec: RunSpec) -> str | None:
    """Content hash of a cacheable spec, or ``None``."""
    payload = cache_payload(spec)
    if payload is None:
        return None
    text = json.dumps(payload, sort_keys=True)
    return hashlib.sha256(text.encode()).hexdigest()


# ----------------------------------------------------------------------
# Worker-side execution
# ----------------------------------------------------------------------
def _run_seed(spec: RunSpec) -> int:
    """Deterministic per-run seed, independent of worker assignment."""
    if isinstance(spec.policy, PolicySpec):
        policy_token: object = asdict(spec.policy)
    else:
        policy_token = getattr(spec.policy, "__qualname__", repr(spec.policy))
    text = json.dumps(
        ["run-seed", _workload_fingerprint(spec.workload), policy_token],
        sort_keys=True,
        default=str,
    )
    return int.from_bytes(hashlib.sha256(text.encode()).digest()[:4], "big")


def _execute(item: tuple[int, RunSpec]) -> "tuple[int, PolicyRun | RunError]":
    """Run one cell; never raises (exceptions become :class:`RunError`)."""
    index, spec = item
    # Per-run randomness goes through a derived stream, never the global
    # random/np.random state (simlint SIM002): the stream is a pure
    # function of the spec, so results are identical regardless of which
    # worker — or how many — executes the cell.
    previous = set_run_stream(derive_run_stream(_run_seed(spec)))
    try:
        workload = (
            spec.workload if isinstance(spec.workload, Workload) else spec.workload.build()
        )
        policy = (
            spec.policy.build() if isinstance(spec.policy, PolicySpec) else spec.policy()
        )
        return index, simulate(workload, policy)
    except Exception as exc:
        return index, RunError(
            workload_name=spec.workload_name,
            policy_key=spec.policy_key,
            error_type=type(exc).__name__,
            message=str(exc),
            traceback=traceback.format_exc(),
        )
    finally:
        set_run_stream(previous)


def _picklable(spec: RunSpec) -> bool:
    try:
        pickle.dumps(spec)
        return True
    except Exception:
        return False


# ----------------------------------------------------------------------
# The grid executor
# ----------------------------------------------------------------------
@dataclass
class GridOutcome:
    """Results of one grid, aligned with its input specs.

    ``entries[i]`` is the :class:`PolicyRun` for ``specs[i]`` or a
    :class:`RunError` if that run failed.  ``executed`` counts the
    simulations actually performed (cache hits excluded), which is what a
    warm-cache rerun drives to zero.
    """

    specs: list[RunSpec]
    entries: "list[PolicyRun | RunError]"
    elapsed_seconds: float
    workers: int
    executed: int
    cache_hits: int
    #: Failure history of every cell that ever failed (incl. recovered).
    ledger: FailureLedger = field(default_factory=lambda: FailureLedger(0))

    @property
    def errors(self) -> list[RunError]:
        return [e for e in self.entries if isinstance(e, RunError)]

    @property
    def runs(self) -> list[PolicyRun]:
        return [e for e in self.entries if isinstance(e, PolicyRun)]

    @property
    def sim_seconds(self) -> float:
        """Total single-core simulation time across successful runs."""
        return sum(r.wall_seconds for r in self.runs)

    @property
    def speedup(self) -> float:
        """Aggregate speedup: simulation seconds delivered per wall second."""
        if self.elapsed_seconds <= 0:
            return 1.0
        return self.sim_seconds / self.elapsed_seconds

    def by_key(self) -> "dict[tuple[str, str], PolicyRun]":
        """Successful runs keyed by ``(workload_name, policy_key)``."""
        return {
            (spec.workload_name, spec.policy_key): entry
            for spec, entry in zip(self.specs, self.entries)
            if isinstance(entry, PolicyRun)
        }

    def raise_errors(self) -> None:
        """Raise ``RuntimeError`` summarizing failures, if any."""
        errors = self.errors
        if errors:
            summary = "; ".join(str(e) for e in errors[:3])
            if len(errors) > 3:
                summary += f"; ... {len(errors) - 3} more"
            raise RuntimeError(
                f"{len(errors)}/{len(self.entries)} runs failed: {summary}\n"
                f"first traceback:\n{errors[0].traceback}"
            )


def resolve_workers(value: "int | str | None") -> int:
    """Normalize a worker-count request: ``None``/'' -> 1, 0 -> all cores."""
    if value is None or value == "":
        return 1
    count = int(value)
    if count <= 0:
        return os.cpu_count() or 1
    return count


#: Default per-cell retry budget when neither the ``retries`` argument nor
#: ``REPRO_RUN_RETRIES`` says otherwise.
DEFAULT_RUN_RETRIES = 1


def resolve_retries(value: "int | str | None" = None) -> int:
    """Normalize a retry-budget request (``None`` -> env -> default)."""
    if value is None or value == "":
        raw = os.environ.get("REPRO_RUN_RETRIES", "").strip()
        if not raw:
            return DEFAULT_RUN_RETRIES
        value = raw
    try:
        return max(0, int(value))
    except ValueError:
        return DEFAULT_RUN_RETRIES


def clamp_run_workers(
    run_workers: int, search_workers: int, cores: "int | None" = None
) -> int:
    """Cap the run-level pool when decision-level search pools are nested.

    Every run worker that simulates a ``search_workers > 1`` policy spawns
    its own search pool, so the process count is the *product* of the two
    levels.  Keep ``run_workers x search_workers <= cores``: run-level
    parallelism scales near-linearly (runs are independent), so it is the
    search level that keeps its requested width and the run level that
    yields.  Never clamps below 1, and never touches purely serial setups.
    """
    if run_workers <= 1 or search_workers <= 1:
        return max(1, run_workers)
    if cores is None:
        from repro.util.workerpool import available_cores

        cores = available_cores()
    return max(1, min(run_workers, cores // search_workers))


def run_grid(
    specs: Iterable[RunSpec],
    max_workers: "int | None" = None,
    cache: RunCache | None = None,
    retries: "int | None" = None,
) -> GridOutcome:
    """Execute a grid of runs, in parallel where possible.

    Cache hits are resolved first; the remaining cells go to a process
    pool when ``max_workers`` resolves above 1 (0 means all cores), with
    non-picklable cells — and everything, when the pool is unavailable —
    executed serially through the identical worker function.  Failed
    cells are retried serially up to ``retries`` times (``None`` defers
    to ``REPRO_RUN_RETRIES``), and every failure lands in the outcome's
    :class:`FailureLedger`.  Results are returned in spec order
    regardless of completion order.
    """
    specs = list(specs)
    started = time.perf_counter()
    workers = resolve_workers(max_workers)
    # Nested-concurrency cap: specs whose policies parallelize their own
    # per-decision search multiply the process count.
    nested_search = max(
        (getattr(spec.policy, "search_workers", 1) for spec in specs),
        default=1,
    )
    workers = clamp_run_workers(workers, nested_search)
    entries: "list[PolicyRun | RunError | None]" = [None] * len(specs)
    keys: list[str | None] = [None] * len(specs)

    pending: list[int] = []
    cache_hits = 0
    for i, spec in enumerate(specs):
        if cache is not None:
            keys[i] = cache_key(spec)
            if keys[i] is not None:
                hit = cache.get(keys[i])
                if hit is not None:
                    entries[i] = hit
                    cache_hits += 1
                    continue
        pending.append(i)

    serial = pending
    if workers > 1 and len(pending) > 1:
        pooled = [i for i in pending if _picklable(specs[i])]
        serial = [i for i in pending if i not in set(pooled)]
        if pooled:
            with ProcessPoolExecutor(max_workers=min(workers, len(pooled))) as pool:
                futures = [pool.submit(_execute, (i, specs[i])) for i in pooled]
                for i, future in zip(pooled, futures):
                    try:
                        _, outcome = future.result()
                    except Exception as exc:  # pool/transport failure
                        outcome = RunError(
                            workload_name=specs[i].workload_name,
                            policy_key=specs[i].policy_key,
                            error_type=type(exc).__name__,
                            message=str(exc),
                            traceback=traceback.format_exc(),
                        )
                    entries[i] = outcome
    for i in serial:
        _, entries[i] = _execute((i, specs[i]))

    # Bounded self-healing: re-execute failed cells serially (the identical
    # worker function, so a recovered retry is bit-identical to a clean
    # first attempt) and keep a ledger of every failure either way.
    retry_budget = resolve_retries(retries)
    ledger = FailureLedger(retry_budget=retry_budget)
    failed = [i for i in pending if isinstance(entries[i], RunError)]
    history: dict[int, list[RunError]] = {
        i: [entries[i]] for i in failed  # type: ignore[list-item]
    }
    for _attempt in range(retry_budget):
        if not failed:
            break
        still_failed: list[int] = []
        for i in failed:
            _, outcome = _execute((i, specs[i]))
            entries[i] = outcome
            if isinstance(outcome, RunError):
                history[i].append(outcome)
                still_failed.append(i)
        failed = still_failed
    for i in sorted(history):
        errors = history[i]
        recovered = not isinstance(entries[i], RunError)
        ledger.records.append(
            FailureRecord(
                index=i,
                workload_name=specs[i].workload_name,
                policy_key=specs[i].policy_key,
                attempts=len(errors) + (1 if recovered else 0),
                recovered=recovered,
                errors=tuple(errors),
            )
        )

    if cache is not None:
        for i in pending:
            entry = entries[i]
            if keys[i] is not None and isinstance(entry, PolicyRun):
                cache.put(keys[i], entry, spec_note=cache_payload(specs[i]))

    result = GridOutcome(
        specs=specs,
        entries=entries,  # type: ignore[arg-type]  # every slot is filled
        elapsed_seconds=time.perf_counter() - started,
        workers=workers,
        executed=len(pending),
        cache_hits=cache_hits,
        ledger=ledger,
    )
    _session_stats.record(result)
    return result


# ----------------------------------------------------------------------
# Session-wide execution configuration (CLI / env / benchmark harness)
# ----------------------------------------------------------------------
@dataclass
class ExecutionConfig:
    """How ``run_all`` executes grids for the rest of the session."""

    max_workers: int = 1
    cache: RunCache | None = None
    retries: int = DEFAULT_RUN_RETRIES


_active_config: ExecutionConfig | None = None


def default_execution() -> ExecutionConfig:
    """Config from the environment: ``REPRO_WORKERS``, ``REPRO_CACHE[_DIR]``,
    ``REPRO_RUN_RETRIES``."""
    cache = None
    if os.environ.get("REPRO_CACHE", "").strip() in {"1", "true", "yes"}:
        cache = RunCache(os.environ.get("REPRO_CACHE_DIR") or None)
    return ExecutionConfig(
        max_workers=resolve_workers(os.environ.get("REPRO_WORKERS")),
        cache=cache,
        retries=resolve_retries(),
    )


def configure(
    max_workers: "int | None" = None,
    cache: RunCache | None = None,
    retries: "int | None" = None,
) -> ExecutionConfig:
    """Set the session execution config (CLI flags, benchmark harness)."""
    global _active_config
    _active_config = ExecutionConfig(
        max_workers=resolve_workers(max_workers),
        cache=cache,
        retries=resolve_retries(retries),
    )
    return _active_config


def reset_execution() -> None:
    """Drop any ``configure()`` override, returning to env defaults."""
    global _active_config
    _active_config = None


def active_execution() -> ExecutionConfig:
    return _active_config if _active_config is not None else default_execution()


def run_all(specs: Sequence[RunSpec]) -> list[PolicyRun]:
    """Run a grid under the active config; raise if any cell failed.

    This is what the figure and claims builders call: success means a
    full list of runs in spec order, failure means a ``RuntimeError``
    carrying every error record.
    """
    config = active_execution()
    outcome = run_grid(
        specs,
        max_workers=config.max_workers,
        cache=config.cache,
        retries=config.retries,
    )
    outcome.raise_errors()
    return outcome.entries  # type: ignore[return-value]  # no errors left


# ----------------------------------------------------------------------
# Session accounting: per-run wall time and aggregate speedup
# ----------------------------------------------------------------------
@dataclass
class SessionStats:
    """Accumulated grid statistics for the run report."""

    grids: int = 0
    runs: int = 0
    executed: int = 0
    cache_hits: int = 0
    errors: int = 0
    elapsed_seconds: float = 0.0
    sim_seconds: float = 0.0
    max_workers: int = 1

    def record(self, outcome: GridOutcome) -> None:
        self.grids += 1
        self.runs += len(outcome.entries)
        self.executed += outcome.executed
        self.cache_hits += outcome.cache_hits
        self.errors += len(outcome.errors)
        self.elapsed_seconds += outcome.elapsed_seconds
        self.sim_seconds += outcome.sim_seconds
        self.max_workers = max(self.max_workers, outcome.workers)

    @property
    def speedup(self) -> float:
        if self.elapsed_seconds <= 0:
            return 1.0
        return self.sim_seconds / self.elapsed_seconds

    def summary(self) -> str:
        return (
            f"{self.runs} runs ({self.executed} executed, "
            f"{self.cache_hits} cache hits, {self.errors} errors) in "
            f"{self.elapsed_seconds:.1f} s wall; {self.sim_seconds:.1f} s of "
            f"simulation -> speedup x{self.speedup:.2f} "
            f"(workers <= {self.max_workers})"
        )


_session_stats = SessionStats()


def session_stats() -> SessionStats:
    """Statistics accumulated by every ``run_grid`` since the last reset."""
    return _session_stats


def reset_session_stats() -> SessionStats:
    global _session_stats
    _session_stats = SessionStats()
    return _session_stats
