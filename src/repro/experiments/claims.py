"""The reproduction certificate: every qualitative claim, checked.

EXPERIMENTS.md records paper-vs-measured narratively; this module does it
*executably*.  Each :class:`Claim` encodes one qualitative statement from
the paper's evaluation as a predicate over simulation results; the suite
runs the shared simulation matrix once and reports PASS/FAIL per claim
with the numbers behind the verdict.

Claims are aggregate by design (sums or most-months majorities): at
reduced scale individual months are noisy, and the paper's own claims are
about tendencies across its ten months.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.experiments.config import ExperimentScale, current_scale
from repro.experiments.figures import HIGH_LOAD
from repro.experiments.parallel import PolicySpec, RunSpec, WorkloadSpec, run_all
from repro.experiments.runner import PolicyRun
from repro.metrics.excessive import reference_thresholds
from repro.workloads.calibration import MONTH_ORDER


@dataclass
class ClaimResult:
    claim_id: str
    statement: str
    passed: bool
    details: str


@dataclass
class ClaimContext:
    """Shared simulation results all claims read from."""

    months: list[str]
    runs: dict[tuple[str, str], PolicyRun]  # (policy key, month) -> run
    thresholds: dict[str, float]  # month -> FCFS-BF max-wait threshold (s)
    extras: dict[str, Any] = field(default_factory=dict)

    def series(self, policy: str, metric: Callable[[PolicyRun], float]) -> list[float]:
        return [metric(self.runs[(policy, m)]) for m in self.months]

    def total(self, policy: str, metric: Callable[[PolicyRun], float]) -> float:
        return sum(self.series(policy, metric))

    def wins(
        self,
        a: str,
        b: str,
        metric: Callable[[PolicyRun], float],
    ) -> int:
        """Months where policy ``a`` scores strictly lower than ``b``."""
        sa, sb = self.series(a, metric), self.series(b, metric)
        return sum(1 for x, y in zip(sa, sb) if x < y)

    def excess_total(self, policy: str) -> float:
        return sum(
            self.runs[(policy, m)].excessive(self.thresholds[m]).total_hours
            for m in self.months
        )


def build_context(
    exp: ExperimentScale | None = None,
    months: list[str] | None = None,
) -> ClaimContext:
    """Run the shared high-load simulation matrix once.

    The whole month x policy matrix (plus the Figure-6 endpoints) is
    submitted as a single grid to :func:`repro.experiments.parallel
    .run_all`, so it parallelizes across every cell at once and benefits
    from the run cache under the session's execution config.
    """
    exp = exp or current_scale()
    months = months or list(MONTH_ORDER)
    L1 = exp.L(1000)
    L2 = exp.L(2000)
    policies: dict[str, PolicySpec] = {
        "fcfs-bf": PolicySpec("fcfs-bf", node_limit=0),
        "lxf-bf": PolicySpec("lxf-bf", node_limit=0),
        "dds-lxf": PolicySpec("dds/lxf/dynB", node_limit=L1),
        "dds-fcfs": PolicySpec("dds/fcfs/dynB", node_limit=L2),
        "lds-lxf": PolicySpec("lds/lxf/dynB", node_limit=L2),
        "lookahead": PolicySpec("lookahead", node_limit=0),
        "selective": PolicySpec("selective", node_limit=0),
    }

    def workload_spec(month: str) -> WorkloadSpec:
        return WorkloadSpec(
            month=month, seed=exp.seed, scale=exp.job_scale, load=HIGH_LOAD
        )

    grid = [
        RunSpec(workload_spec(month), policy, label=key)
        for month in months
        for key, policy in policies.items()
    ]
    # Figure-6 endpoints on the hard month (January 2004).
    hard = "2004-01"
    if hard in months:
        grid.append(
            RunSpec(
                workload_spec(hard),
                PolicySpec("dds/lxf/dynB", node_limit=exp.L(1000)),
                label="fig6-small",
            )
        )
        grid.append(
            RunSpec(
                workload_spec(hard),
                PolicySpec("dds/lxf/dynB", node_limit=exp.L(10000)),
                label="fig6-large",
            )
        )
    results = run_all(grid)

    n_main = len(months) * len(policies)
    runs: dict[tuple[str, str], PolicyRun] = {}
    for spec, run in zip(grid[:n_main], results[:n_main]):
        runs[(spec.label, spec.workload_name)] = run
    thresholds = {
        month: reference_thresholds(runs[("fcfs-bf", month)].jobs)[0]
        for month in months
    }

    context = ClaimContext(months=months, runs=runs, thresholds=thresholds)
    if hard in months:
        small, large = results[n_main], results[n_main + 1]
        context.extras["fig6"] = (small, large, thresholds[hard])

    # Optimality-gap micro-grid (C12/C13): small instances solved exactly
    # by core.exact, searched at the scaled Figure-6 budgets.  Instances
    # are capped at 5 jobs so the exact solves stay trivial next to the
    # simulation matrix above.
    from repro.experiments.optgap import run_optgap

    context.extras["optgap"] = run_optgap(
        n_instances=6,
        budgets=(exp.L(1000), exp.L(10000)),
        seed=exp.seed,
        max_jobs=5,
    )
    return context


# ----------------------------------------------------------------------
# The claims
# ----------------------------------------------------------------------
def _avg_slowdown(run: PolicyRun) -> float:
    return run.metrics.avg_bounded_slowdown


def _max_wait(run: PolicyRun) -> float:
    return run.metrics.max_wait_hours


def _avg_wait(run: PolicyRun) -> float:
    return run.metrics.avg_wait_hours


def evaluate_claims(context: ClaimContext) -> list[ClaimResult]:
    """Evaluate every claim against the shared context."""
    n = len(context.months)
    results: list[ClaimResult] = []

    def claim(claim_id: str, statement: str, passed: bool, details: str) -> None:
        results.append(ClaimResult(claim_id, statement, passed, details))

    # --- The backfill trade-off (paper §3.2, Figures 3-4) -------------
    wins = context.wins("lxf-bf", "fcfs-bf", _avg_slowdown)
    claim(
        "C1",
        "LXF-BF beats FCFS-BF on avg slowdown in most months",
        wins >= n * 0.6,
        f"{wins}/{n} months",
    )
    fcfs_max = context.total("fcfs-bf", _max_wait)
    lxf_max = context.total("lxf-bf", _max_wait)
    claim(
        "C2",
        "FCFS-BF's aggregate max wait is below LXF-BF's",
        fcfs_max < lxf_max,
        f"{fcfs_max:.0f} h vs {lxf_max:.0f} h",
    )

    # --- DDS/lxf/dynB: best of both (Figures 3-4) ---------------------
    dds_max = context.total("dds-lxf", _max_wait)
    claim(
        "C3",
        "DDS/lxf/dynB's aggregate max wait tracks the better baseline",
        dds_max <= min(fcfs_max, lxf_max) * 1.15,
        f"DDS {dds_max:.0f} h vs best baseline {min(fcfs_max, lxf_max):.0f} h",
    )
    closer = sum(
        1
        for i in range(n)
        if abs(
            context.series("dds-lxf", _avg_slowdown)[i]
            - context.series("lxf-bf", _avg_slowdown)[i]
        )
        <= abs(
            context.series("dds-lxf", _avg_slowdown)[i]
            - context.series("fcfs-bf", _avg_slowdown)[i]
        )
    )
    claim(
        "C4",
        "DDS/lxf/dynB's avg slowdown sits nearer LXF-BF than FCFS-BF",
        closer >= n * 0.6,
        f"{closer}/{n} months",
    )

    # --- Excessive wait (Figure 4e-h) ----------------------------------
    fcfs_excess = context.excess_total("fcfs-bf")
    claim(
        "C5",
        "FCFS-BF has zero total excessive wait w.r.t. its own max",
        abs(fcfs_excess) < 1e-9,
        f"{fcfs_excess:.3f} h",
    )
    dds_excess = context.excess_total("dds-lxf")
    lxf_excess = context.excess_total("lxf-bf")
    claim(
        "C6",
        "DDS/lxf/dynB accumulates less excessive wait than LXF-BF",
        dds_excess <= lxf_excess + 1e-9,
        f"{dds_excess:.1f} h vs {lxf_excess:.1f} h",
    )

    # --- Algorithms and heuristics (Figure 7) --------------------------
    fcfs_h = context.total("dds-fcfs", _avg_slowdown)
    lxf_h = context.total("dds-lxf", _avg_slowdown)
    claim(
        "C7",
        "lxf branching beats fcfs branching on avg slowdown",
        lxf_h <= fcfs_h * 1.05,
        f"DDS/lxf {lxf_h:.0f} vs DDS/fcfs {fcfs_h:.0f} (totals)",
    )
    if "2004-01" in context.months:
        lds_hard = (
            context.runs[("lds-lxf", "2004-01")]
            .excessive(context.thresholds["2004-01"])
            .total_hours
        )
        dds_hard = (
            context.runs[("dds-lxf", "2004-01")]
            .excessive(context.thresholds["2004-01"])
            .total_hours
        )
        claim(
            "C8",
            "LDS/lxf trails DDS/lxf on excessive wait in the hard month",
            lds_hard >= dds_hard - 1e-9,
            f"LDS {lds_hard:.1f} h vs DDS {dds_hard:.1f} h (1/04)",
        )

    # --- Node limit (Figure 6) ------------------------------------------
    if "fig6" in context.extras:
        small, large, threshold = context.extras["fig6"]
        small_excess = small.excessive(threshold).total_hours
        large_excess = large.excessive(threshold).total_hours
        claim(
            "C9",
            "A larger search budget reduces excessive wait in the hard month",
            large_excess <= small_excess + 1e-9,
            f"L-small {small_excess:.1f} h -> L-large {large_excess:.1f} h",
        )

    # --- Backfill variants (paper §3.2 observations) --------------------
    look = context.total("lookahead", _avg_slowdown)
    fcfs_s = context.total("fcfs-bf", _avg_slowdown)
    claim(
        "C10",
        "Lookahead performs very similarly to FCFS-BF",
        abs(look - fcfs_s) <= fcfs_s * 0.15,
        f"Lookahead {look:.0f} vs FCFS-BF {fcfs_s:.0f} (slowdown totals)",
    )
    selective = context.total("selective", _avg_slowdown)
    claim(
        "C11",
        "Selective-backfill improves FCFS-BF's slowdown like LXF-BF does",
        selective <= fcfs_s,
        f"Selective {selective:.0f} vs FCFS-BF {fcfs_s:.0f}",
    )

    # --- Gap to optimal (the exact-solver oracle) -----------------------
    if "optgap" in context.extras:
        report = context.extras["optgap"]
        low_l, top_l = report["budgets"][0], report["budgets"][-1]

        def gap_row(algorithm: str, limit: int) -> dict[str, Any]:
            (row,) = [
                r
                for r in report["rows"]
                if r["algorithm"] == algorithm and r["node_limit"] == limit
            ]
            return row

        dds_top = gap_row("dds", top_l)
        claim(
            "C12",
            "DDS at the larger Fig-6 budget finds the provable optimum on "
            "most small instances",
            dds_top["frac_optimal"] >= 0.5,
            f"{dds_top['n_optimal']}/{dds_top['n_instances']} optimal at "
            f"L={top_l}",
        )
        shrinks = all(
            gap_row(a, top_l)["mean_excess_gap_hours"]
            <= gap_row(a, low_l)["mean_excess_gap_hours"] + 1e-9
            for a in ("dds", "lds")
        )
        claim(
            "C13",
            "The gap to optimal never grows with the search budget",
            shrinks,
            "mean excess gap (h) "
            + ", ".join(
                f"{a}: {gap_row(a, low_l)['mean_excess_gap_hours']:.2f}@L={low_l}"
                f" -> {gap_row(a, top_l)['mean_excess_gap_hours']:.2f}@L={top_l}"
                for a in ("dds", "lds")
            ),
        )
    return results


def render_claims(results: list[ClaimResult]) -> str:
    lines = ["Reproduction certificate (qualitative claims, paper vs measured)"]
    width = max(len(r.statement) for r in results) + 2
    for r in results:
        verdict = "PASS" if r.passed else "FAIL"
        lines.append(f"  [{verdict}] {r.claim_id:>4}  {r.statement:<{width}} {r.details}")
    passed = sum(r.passed for r in results)
    lines.append(f"  {passed}/{len(results)} claims reproduced")
    return "\n".join(lines)
