"""cProfile attribution for a slice of a simulation run.

``repro profile`` answers "where does a scheduling decision spend its
time?" — the tool for deciding what to move into the compiled kernel
next (see ``docs/performance.md``).  Profiling a whole month mixes
thousands of decisions with workload generation and metric collection;
profiling a *slice* — the first N decision points of a real run — keeps
the collection window on the per-decision hot path while still
exercising genuine queue states rather than a synthetic loop.

The slice is cut with a wrapper policy that counts decision points and
raises :class:`SliceComplete` when the budget is spent; the simulation's
normal cleanup hooks still run (the engine guarantees
``on_simulation_end``), and the profiler stops on the way out.
"""

from __future__ import annotations

import cProfile
import time
from typing import Sequence

from repro.simulator.cluster import Cluster
from repro.simulator.job import Job
from repro.simulator.policy import RunningJob, SchedulingPolicy
from repro.workloads.trace import Workload


class SliceComplete(Exception):
    """Raised by the slicing wrapper once N decisions have been profiled."""


class _SlicedPolicy(SchedulingPolicy):
    """Forwarding wrapper that stops the run after ``max_decisions``.

    The budget check happens *before* the inner ``decide`` so exactly
    ``max_decisions`` decisions execute — the raise replaces decision
    N+1, it never truncates decision N.
    """

    def __init__(self, inner: SchedulingPolicy, max_decisions: int) -> None:
        self._inner = inner
        self._max = max_decisions
        self.decisions = 0
        self.name = inner.name
        self.runtime_source = inner.runtime_source

    def decide(
        self,
        now: float,
        waiting: Sequence[Job],
        running: Sequence[RunningJob],
        cluster: Cluster,
    ) -> list[Job]:
        if self.decisions >= self._max:
            raise SliceComplete
        self.decisions += 1
        return self._inner.decide(now, waiting, running, cluster)

    def on_start(self, job: Job, now: float) -> None:
        self._inner.on_start(job, now)

    def on_finish(self, job: Job, now: float) -> None:
        self._inner.on_finish(job, now)

    def on_simulation_begin(self) -> None:
        self._inner.on_simulation_begin()

    def on_simulation_end(self) -> None:
        self._inner.on_simulation_end()

    def reset(self) -> None:
        self.decisions = 0
        self._inner.reset()


def time_decision_slice(
    workload: Workload, policy: SchedulingPolicy, decisions: int
) -> tuple[int, float]:
    """Run (without profiling) the first ``decisions`` decision points and
    return ``(decisions_executed, wall_seconds)`` — the end-to-end
    decisions/sec measurement of ``repro bench``, which includes the
    simulator's event loop and schedule bookkeeping, not just the search
    node loop."""
    from repro.simulator.engine import Simulation

    if decisions < 1:
        raise ValueError("decisions must be >= 1")
    wrapped = _SlicedPolicy(policy, decisions)
    sim = Simulation(
        workload.fresh_jobs(), wrapped, workload.cluster, window=workload.window
    )
    t0 = time.perf_counter()
    try:
        sim.run()
    except SliceComplete:
        pass
    return wrapped.decisions, time.perf_counter() - t0


def profile_decisions(
    workload: Workload, policy: SchedulingPolicy, decisions: int
) -> tuple[cProfile.Profile, int]:
    """cProfile the first ``decisions`` decision points of a run.

    Returns the loaded profiler and the number of decisions actually
    executed (fewer than requested when the workload drains first).
    """
    from repro.simulator.engine import Simulation

    if decisions < 1:
        raise ValueError("decisions must be >= 1")
    wrapped = _SlicedPolicy(policy, decisions)
    sim = Simulation(
        workload.fresh_jobs(), wrapped, workload.cluster, window=workload.window
    )
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        sim.run()
    except SliceComplete:
        pass
    finally:
        profiler.disable()
    return profiler, wrapped.decisions
