"""One-shot full reproduction: every table, figure and claim to disk.

``reproduce_all(out_dir)`` regenerates Tables 3-4, Figures 1-8 and the
claims certificate at the active experiment scale, writes each rendering
under ``out_dir`` and a combined ``REPORT.md`` index.  The CLI exposes it
as ``python -m repro reproduce --out DIR``.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Callable, Sequence

from repro.experiments import figures as fig_mod
from repro.experiments import parallel
from repro.experiments.claims import build_context, evaluate_claims, render_claims
from repro.experiments.config import ExperimentScale, current_scale
from repro.experiments.figures import FigureSeries
from repro.util.atomio import atomic_write_text

#: Every reproducible artifact, in report order.  Each callable takes the
#: active :class:`ExperimentScale` and yields a renderable figure/table.
ARTIFACTS: tuple[tuple[str, Callable[..., FigureSeries]], ...] = (
    ("table3", fig_mod.table3_job_mix),
    ("table4", fig_mod.table4_runtimes),
    ("fig1", lambda exp: fig_mod.fig1_tree()),
    ("fig2", fig_mod.fig2_fixed_bound_sensitivity),
    ("fig3", fig_mod.fig3_original_load),
    ("fig4", fig_mod.fig4_high_load),
    ("fig5", fig_mod.fig5_job_classes),
    ("fig6", fig_mod.fig6_node_limit),
    ("fig7", fig_mod.fig7_algorithms),
    ("fig8", fig_mod.fig8_requested_runtimes),
)


def reproduce_all(
    out_dir: str | Path,
    exp: ExperimentScale | None = None,
    only: Sequence[str] | None = None,
    with_claims: bool = True,
    progress: Callable[[str], None] | None = None,
) -> Path:
    """Run the full reproduction and write a report; returns its path.

    ``only`` restricts to a subset of artifact names (e.g. ``["fig3"]``);
    ``progress`` receives one line per completed artifact.
    """
    exp = exp or current_scale()
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    say = progress or (lambda line: None)
    stats = parallel.reset_session_stats()

    index_lines = [
        "# Reproduction report",
        "",
        f"Scale: job_scale={exp.job_scale:g}, "
        f"node_limit_factor={exp.node_limit_factor:g}, seed={exp.seed}.",
        "",
    ]
    selected = [
        (name, fn)
        for name, fn in ARTIFACTS
        if only is None or name in set(only)
    ]
    if only is not None:
        unknown = set(only) - {name for name, _ in ARTIFACTS}
        if unknown:
            raise ValueError(
                f"unknown artifacts {sorted(unknown)}; "
                f"choose from {[n for n, _ in ARTIFACTS]}"
            )

    for name, fn in selected:
        started = time.perf_counter()
        figure = fn(exp)
        text = figure.render()
        # Atomic so an interrupted reproduce never leaves a torn artifact
        # that a later --only rerun would mistake for a finished one.
        atomic_write_text(out / f"{name}.txt", text + "\n")
        elapsed = time.perf_counter() - started
        say(f"{name}: {figure.title} ({elapsed:.1f} s)")
        index_lines += [f"## {figure.figure}: {figure.title}", "", "```"]
        index_lines += [text, "```", ""]

    if with_claims:
        started = time.perf_counter()
        context = build_context(exp)
        results = evaluate_claims(context)
        text = render_claims(results)
        atomic_write_text(out / "claims.txt", text + "\n")
        say(f"claims: {sum(r.passed for r in results)}/{len(results)} "
            f"({time.perf_counter() - started:.1f} s)")
        index_lines += ["## Reproduction certificate", "", "```", text, "```", ""]

    if stats.runs:
        say(f"execution: {stats.summary()}")
        index_lines += ["## Execution", "", stats.summary(), ""]

    report = out / "REPORT.md"
    atomic_write_text(report, "\n".join(index_lines))
    return report
