"""Content-addressed on-disk cache for simulation runs.

Every figure and claim in the paper is a grid of independent
(workload, policy) simulations, and each cell is fully determined by its
spec: the workload generator inputs, the policy configuration, and the
simulation semantics.  :class:`RunCache` exploits that determinism by
persisting each completed :class:`~repro.experiments.runner.PolicyRun` as
JSON under a key that hashes exactly those inputs (see
:func:`repro.experiments.parallel.cache_key`), so re-running a benchmark
or the claims certificate skips every already-computed cell.

Invalidation is by construction: any change to the workload spec, the
policy spec, or :data:`CACHE_VERSION` yields a different key, and the old
entry is simply never read again.  ``CACHE_VERSION`` must be bumped
whenever the *simulation semantics* change (engine event ordering, search
node accounting, objective definitions, ...), since those are the only
inputs not captured in the spec itself.  Deleting the cache directory
(``.repro-cache/`` by default) is always safe.

Crash safety (see ``docs/robustness.md``): entries are written atomically
(tmp + fsync + rename via :mod:`repro.util.atomio`) and carry a SHA-256
checksum over their canonical payload.  A read that finds corruption —
torn content from a foreign writer, disk rot, an injected ``cache.read``/
``cache.write`` fault — never crashes and never returns silently wrong
data: the entry is *quarantined* (moved under ``quarantine/`` with a
reason recorded in ``quarantine/ledger.jsonl``) and the read reports a
miss, so the cell is simply recomputed.
"""

from __future__ import annotations

import hashlib
import json
import logging
from pathlib import Path
from typing import Any

from repro.experiments.runner import PolicyRun
from repro.metrics.measures import JobMetrics
from repro.simulator.job import Job
from repro.util import faults
from repro.util.atomio import atomic_write_text

log = logging.getLogger("repro.cache")

#: Bump when simulation semantics change in a way specs cannot capture.
#: (2: entries gained the checksummed record envelope.)
CACHE_VERSION = 2

#: Default cache directory, relative to the current working directory.
DEFAULT_CACHE_DIR = ".repro-cache"

#: Subdirectory of the cache root holding quarantined corrupt entries.
QUARANTINE_DIR = "quarantine"


def run_to_payload(run: PolicyRun) -> dict[str, Any]:
    """A JSON-safe dict that round-trips through :func:`run_from_payload`.

    Jobs are stored as flat rows; ``repr``-based float serialization in
    the json module round-trips every finite float exactly, so metrics
    recomputed from a cached run (excessive-wait stats, thresholds) are
    bit-identical to the original.
    """
    return {
        "workload_name": run.workload_name,
        "policy_name": run.policy_name,
        "offered_load": run.offered_load,
        "metrics": run.metrics.as_dict(),
        "avg_queue_length": run.avg_queue_length,
        "utilization": run.utilization,
        "wall_seconds": run.wall_seconds,
        "policy_stats": {
            k: v
            for k, v in run.policy_stats.items()
            if isinstance(v, (bool, int, float, str))
        },
        "jobs": [
            [
                j.job_id,
                j.submit_time,
                j.nodes,
                j.runtime,
                j.requested_runtime,
                j.user,
                j.start_time,
                j.end_time,
            ]
            for j in run.jobs
        ],
    }


def run_from_payload(payload: dict[str, Any]) -> PolicyRun:
    """Reconstruct a :class:`PolicyRun` written by :func:`run_to_payload`."""
    jobs = []
    for job_id, submit, nodes, runtime, requested, user, start, end in payload["jobs"]:
        job = Job(
            job_id=int(job_id),
            submit_time=float(submit),
            nodes=int(nodes),
            runtime=float(runtime),
            requested_runtime=float(requested),
            user=user,
        )
        job.restore_completed(float(start), float(end))
        jobs.append(job)
    metrics = dict(payload["metrics"])
    metrics["n_jobs"] = int(metrics["n_jobs"])
    return PolicyRun(
        workload_name=payload["workload_name"],
        policy_name=payload["policy_name"],
        offered_load=float(payload["offered_load"]),
        metrics=JobMetrics(**metrics),
        avg_queue_length=float(payload["avg_queue_length"]),
        utilization=float(payload["utilization"]),
        jobs=jobs,
        policy_stats=dict(payload.get("policy_stats", {})),
        wall_seconds=float(payload.get("wall_seconds", 0.0)),
    )


def _canonical(payload: dict[str, Any]) -> str:
    """The canonical serialization the checksum covers.

    ``json.dumps(json.loads(text))`` with sorted keys is a fixed point for
    JSON-safe payloads (repr-based float formatting round-trips exactly),
    so the digest computed at write time is reproducible at read time.
    """
    return json.dumps(payload, sort_keys=True)


def _digest(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


class CorruptEntry(ValueError):
    """Internal marker: a cache entry failed structural/checksum validation."""


class RunCache:
    """Checksummed JSON store keyed by content hash, sharded by key prefix.

    Safe under concurrent writers *and* crashes: entries are written
    atomically (tmp + fsync + rename), validated by checksum on read, and
    a corrupt or truncated entry is quarantined and reads as a miss — it
    can neither crash the caller nor serve a silently wrong hit.
    """

    def __init__(self, root: str | Path | None = None) -> None:
        self.root = Path(root) if root is not None else Path(DEFAULT_CACHE_DIR)
        #: Entries quarantined by this cache object (diagnostics/tests).
        self.quarantined = 0

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    # ------------------------------------------------------------------
    def get(self, key: str) -> PolicyRun | None:
        """The cached run for ``key``, or ``None`` on miss/corruption.

        Corruption — unparseable content, a structurally wrong record, a
        checksum mismatch, or an injected torn read — quarantines the
        entry with a logged reason and reports a miss.
        """
        path = self._path(key)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            return None  # plain miss (or unreadable entry: recompute)
        if faults.should_fire("cache.read"):
            self._quarantine(path, key, "injected torn read (fault plan)")
            return None
        try:
            return self._validate(key, text)
        except CorruptEntry as exc:
            self._quarantine(path, key, str(exc))
            return None

    def _validate(self, key: str, text: str) -> PolicyRun | None:
        """Parse + checksum an entry; raises :class:`CorruptEntry`."""
        try:
            record = json.loads(text)
        except ValueError as exc:
            raise CorruptEntry(f"unparseable JSON ({exc})") from None
        if not isinstance(record, dict) or "sha256" not in record or "payload" not in record:
            raise CorruptEntry("missing checksum envelope")
        payload = record["payload"]
        if not isinstance(payload, dict):
            raise CorruptEntry("payload is not an object")
        if record["sha256"] != _digest(_canonical(payload)):
            raise CorruptEntry("checksum mismatch")
        # A checksum-valid entry of another format version is a miss, not
        # corruption: it was written intact by different code.
        if payload.get("version") != CACHE_VERSION:
            return None
        try:
            return run_from_payload(payload["run"])
        except (ValueError, KeyError, TypeError) as exc:
            raise CorruptEntry(f"malformed run payload ({exc})") from None

    def put(self, key: str, run: PolicyRun, spec_note: dict[str, Any] | None = None) -> Path:
        """Persist ``run`` under ``key``; returns the entry's path.

        ``spec_note`` is a human-readable description of the spec stored
        alongside the run for debuggability; it is never read back.  The
        write is atomic (tmp + fsync + rename) and the record carries a
        checksum over its canonical payload.  An injected ``cache.write``
        fault persists deliberately corrupted bytes instead — the
        simulated disk rot a later :meth:`get` must catch.
        """
        path = self._path(key)
        payload = {"version": CACHE_VERSION, "spec": spec_note, "run": run_to_payload(run)}
        body = _canonical(payload)
        text = json.dumps({"sha256": _digest(body), "payload": payload})
        if faults.should_fire("cache.write"):
            text = text[: max(1, len(text) // 2)]  # torn/corrupt content
        atomic_write_text(path, text)
        return path

    # ------------------------------------------------------------------
    def _quarantine(self, path: Path, key: str, reason: str) -> None:
        """Move a corrupt entry aside and record why; never raises."""
        qdir = self.root / QUARANTINE_DIR
        dest = qdir / f"{path.name}.quarantined"
        try:
            qdir.mkdir(parents=True, exist_ok=True)
            n = 0
            while dest.exists():
                n += 1
                dest = qdir / f"{path.name}.{n}.quarantined"
            path.replace(dest)
            moved = str(dest.name)
        except OSError:
            path.unlink(missing_ok=True)
            moved = None
        self.quarantined += 1
        log.warning("quarantined cache entry %s: %s", key[:12], reason)
        try:
            with open(qdir / "ledger.jsonl", "a", encoding="utf-8") as ledger:
                ledger.write(
                    json.dumps({"key": key, "file": moved, "reason": reason}) + "\n"
                )
        except OSError:  # pragma: no cover - diagnostics must never crash
            pass

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        if not self.root.exists():
            return 0
        for entry in sorted(self.root.glob("*/*.json")):
            entry.unlink(missing_ok=True)
            removed += 1
        return removed

    def __len__(self) -> int:
        if not self.root.exists():
            return 0
        return len(list(self.root.glob("*/*.json")))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RunCache({str(self.root)!r}, {len(self)} entries)"
