"""Content-addressed on-disk cache for simulation runs.

Every figure and claim in the paper is a grid of independent
(workload, policy) simulations, and each cell is fully determined by its
spec: the workload generator inputs, the policy configuration, and the
simulation semantics.  :class:`RunCache` exploits that determinism by
persisting each completed :class:`~repro.experiments.runner.PolicyRun` as
JSON under a key that hashes exactly those inputs (see
:func:`repro.experiments.parallel.cache_key`), so re-running a benchmark
or the claims certificate skips every already-computed cell.

Invalidation is by construction: any change to the workload spec, the
policy spec, or :data:`CACHE_VERSION` yields a different key, and the old
entry is simply never read again.  ``CACHE_VERSION`` must be bumped
whenever the *simulation semantics* change (engine event ordering, search
node accounting, objective definitions, ...), since those are the only
inputs not captured in the spec itself.  Deleting the cache directory
(``.repro-cache/`` by default) is always safe.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.experiments.runner import PolicyRun
from repro.metrics.measures import JobMetrics
from repro.simulator.job import Job

#: Bump when simulation semantics change in a way specs cannot capture.
CACHE_VERSION = 1

#: Default cache directory, relative to the current working directory.
DEFAULT_CACHE_DIR = ".repro-cache"


def run_to_payload(run: PolicyRun) -> dict:
    """A JSON-safe dict that round-trips through :func:`run_from_payload`.

    Jobs are stored as flat rows; ``repr``-based float serialization in
    the json module round-trips every finite float exactly, so metrics
    recomputed from a cached run (excessive-wait stats, thresholds) are
    bit-identical to the original.
    """
    return {
        "workload_name": run.workload_name,
        "policy_name": run.policy_name,
        "offered_load": run.offered_load,
        "metrics": run.metrics.as_dict(),
        "avg_queue_length": run.avg_queue_length,
        "utilization": run.utilization,
        "wall_seconds": run.wall_seconds,
        "policy_stats": {
            k: v
            for k, v in run.policy_stats.items()
            if isinstance(v, (bool, int, float, str))
        },
        "jobs": [
            [
                j.job_id,
                j.submit_time,
                j.nodes,
                j.runtime,
                j.requested_runtime,
                j.user,
                j.start_time,
                j.end_time,
            ]
            for j in run.jobs
        ],
    }


def run_from_payload(payload: dict) -> PolicyRun:
    """Reconstruct a :class:`PolicyRun` written by :func:`run_to_payload`."""
    jobs = []
    for job_id, submit, nodes, runtime, requested, user, start, end in payload["jobs"]:
        job = Job(
            job_id=int(job_id),
            submit_time=float(submit),
            nodes=int(nodes),
            runtime=float(runtime),
            requested_runtime=float(requested),
            user=user,
        )
        job.restore_completed(float(start), float(end))
        jobs.append(job)
    metrics = dict(payload["metrics"])
    metrics["n_jobs"] = int(metrics["n_jobs"])
    return PolicyRun(
        workload_name=payload["workload_name"],
        policy_name=payload["policy_name"],
        offered_load=float(payload["offered_load"]),
        metrics=JobMetrics(**metrics),
        avg_queue_length=float(payload["avg_queue_length"]),
        utilization=float(payload["utilization"]),
        jobs=jobs,
        policy_stats=dict(payload.get("policy_stats", {})),
        wall_seconds=float(payload.get("wall_seconds", 0.0)),
    )


class RunCache:
    """JSON store keyed by content hash, sharded one directory per key prefix.

    Safe under concurrent writers: entries are written to a temporary file
    and atomically renamed, and a corrupt or truncated entry reads as a
    miss rather than an error.
    """

    def __init__(self, root: str | Path | None = None) -> None:
        self.root = Path(root) if root is not None else Path(DEFAULT_CACHE_DIR)

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    # ------------------------------------------------------------------
    def get(self, key: str) -> PolicyRun | None:
        """The cached run for ``key``, or ``None`` on miss/corruption."""
        path = self._path(key)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
            return run_from_payload(payload["run"])
        except (OSError, ValueError, KeyError, TypeError):
            return None

    def put(self, key: str, run: PolicyRun, spec_note: dict | None = None) -> Path:
        """Persist ``run`` under ``key``; returns the entry's path.

        ``spec_note`` is a human-readable description of the spec stored
        alongside the run for debuggability; it is never read back.
        """
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {"version": CACHE_VERSION, "spec": spec_note, "run": run_to_payload(run)}
        tmp = path.with_suffix(f".tmp{id(run)}")
        tmp.write_text(json.dumps(payload), encoding="utf-8")
        tmp.replace(path)
        return path

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        if not self.root.exists():
            return 0
        for entry in self.root.glob("*/*.json"):
            entry.unlink(missing_ok=True)
            removed += 1
        return removed

    def __len__(self) -> int:
        if not self.root.exists():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RunCache({str(self.root)!r}, {len(self)} entries)"
