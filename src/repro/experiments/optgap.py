"""Optimality-gap sweep: how close does budgeted search get to optimal?

The paper's engines are differential-tested to exhaustion (bit-identity,
sanitizers, fuzzing — ``docs/testing.md``), but none of that says how
*good* a node-limited search result is.  This module measures it: a
seeded grid of small decision points, each solved exactly by
:func:`repro.core.exact.solve_exact`, then searched by the two flagship
policies (DDS/lxf and LDS/fcfs) at a sweep of node budgets — reporting,
per (algorithm, budget), the fraction of instances where search attains
the provable optimum and the distribution of the gap where it does not.

``repro optgap`` writes the report to ``BENCH_optgap.json`` at the repo
root, trend-tracked like ``BENCH_search.json``: any future change to the
search order, the profile arithmetic, or the objective that silently
degrades schedule quality shows up as a falling ``frac_optimal`` /
rising gap against the committed file.  The committed report carries a
``tolerance`` block; the ``optgap-smoke`` CI job re-runs ``--quick`` and
checks the fresh numbers against it (:func:`check_report`).

The gap is two-level, like the objective: the headline number is the
level-1 gap (extra excessive-wait hours over optimal); the level-2 gap
(extra bounded slowdown) is reported only over instances whose level-1
value already ties the optimum, where it is the deciding criterion.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Callable

from repro.core.branching import order_jobs
from repro.core.exact import solve_exact
from repro.core.objective import FixedBound, ObjectiveConfig, ScheduleScore
from repro.core.profile import AvailabilityProfile
from repro.core.search import DiscrepancySearch, SearchProblem
from repro.simulator.job import Job
from repro.util.atomio import atomic_write_json
from repro.util.rng import RngStream
from repro.util.timeunits import HOUR

SCHEMA = "repro-bench-optgap/v1"

#: The two flagship policy shapes (same pair as ``BENCH_search.json``).
POLICIES: tuple[tuple[str, str], ...] = (("dds", "lxf"), ("lds", "fcfs"))

#: Node budgets swept per policy, smallest to largest.  The visited leaf
#: set grows monotonically with the budget (same traversal, longer
#: prefix), so per-instance gaps are weakly decreasing along this axis.
FULL_BUDGETS: tuple[int, ...] = (10, 50, 250, 1000)
QUICK_BUDGETS: tuple[int, ...] = (10, 1000)

FULL_INSTANCES = 24
QUICK_INSTANCES = 8

#: Instance size window: large enough that small budgets truncate the
#: tree, small enough that the exact solver is cheap (n! leaves).
MIN_JOBS = 4
MAX_JOBS = 8
DEFAULT_SEED = 2005


def generate_instance(
    index: int,
    seed: int = DEFAULT_SEED,
    min_jobs: int = MIN_JOBS,
    max_jobs: int = MAX_JOBS,
) -> tuple[list[Job], AvailabilityProfile, float, float]:
    """One seeded small decision point: ``(jobs, profile, now, omega)``.

    Deterministic in ``(seed, index)`` via :class:`RngStream` (simlint
    SIM002: no global RNG).  All times are whole seconds, so every
    instance is eligible for the CP-SAT cross-check backend.  The machine
    is mid-recovery at ``now``: a fraction of nodes free immediately and
    full capacity one draw later — the regime where ordering decisions
    actually change the objective.
    """
    rng = RngStream(seed, f"optgap/{index}")
    capacity = int(rng.choice([8, 16, 32]))
    now = 4.0 * HOUR
    n_jobs = int(rng.integers(min_jobs, max_jobs + 1))
    jobs: list[Job] = []
    for i in range(n_jobs):
        job = Job(
            job_id=i,
            submit_time=float(int(rng.integers(0, int(now) + 1))),
            nodes=int(rng.integers(1, capacity + 1)),
            runtime=float(int(rng.integers(600, 12 * 3600 + 1))),
        )
        job.mark_waiting()
        jobs.append(job)
    free_now = int(rng.integers(0, capacity))  # strictly below capacity
    recovery = now + float(int(rng.integers(1800, 6 * 3600 + 1)))
    profile = AvailabilityProfile.from_segments(
        capacity, [(now, free_now), (recovery, capacity)]
    )
    omega = float(int(rng.choice([900, 3600, 7200])))
    return jobs, profile, now, omega


def build_problems(
    index: int,
    seed: int = DEFAULT_SEED,
    min_jobs: int = MIN_JOBS,
    max_jobs: int = MAX_JOBS,
) -> dict[str, SearchProblem]:
    """The instance as one ``SearchProblem`` per branching heuristic.

    The exact optimum is heuristic-independent (every permutation of the
    same jobs is a leaf either way), but each policy searches the tree
    ordered by its own heuristic, exactly as it would in production.
    """
    jobs, profile, now, omega = generate_instance(index, seed, min_jobs, max_jobs)
    objective = ObjectiveConfig(bound=FixedBound(omega))
    return {
        heuristic: SearchProblem(
            jobs=tuple(order_jobs(jobs, heuristic, now)),
            profile=profile,
            now=now,
            omega=omega,
            objective=objective,
        )
        for heuristic in sorted({h for _, h in POLICIES})
    }


def _gap_fields(
    achieved: ScheduleScore, optimal: ScheduleScore
) -> tuple[bool, float, float | None]:
    """``(is_optimal, excess_gap_hours, slowdown_gap_if_level1_tied)``."""
    is_optimal = bool(achieved == optimal)
    excess_gap = achieved.total_excessive_wait - optimal.total_excessive_wait
    slowdown_gap: float | None = None
    # Raw == is the objective's own tie rule: ScheduleScore orders its
    # levels bitwise, so "level-1 tied" must use the same comparison.
    if achieved.total_excessive_wait == optimal.total_excessive_wait:  # simlint: skip=SIM003
        slowdown_gap = achieved.total_slowdown - optimal.total_slowdown
    return is_optimal, excess_gap / 3600.0, slowdown_gap


def run_optgap(
    quick: bool = False,
    n_instances: int | None = None,
    budgets: tuple[int, ...] | None = None,
    seed: int = DEFAULT_SEED,
    max_jobs: int = MAX_JOBS,
    progress: Callable[[str], None] | None = None,
) -> dict[str, Any]:
    """Sweep the grid and build the gap report."""
    say = progress if progress is not None else (lambda _msg: None)
    n = n_instances if n_instances is not None else (
        QUICK_INSTANCES if quick else FULL_INSTANCES
    )
    limits = budgets if budgets is not None else (
        QUICK_BUDGETS if quick else FULL_BUDGETS
    )
    limits = tuple(sorted(set(limits)))  # callers may pass scaled duplicates

    instances: list[dict[str, Any]] = []
    # (algorithm, heuristic, budget) -> list of per-instance gap triples
    cells: dict[tuple[str, str, int], list[tuple[bool, float, float | None]]] = {
        (a, h, L): [] for a, h in POLICIES for L in limits
    }
    for index in range(n):
        problems = build_problems(index, seed=seed, max_jobs=max_jobs)
        some = next(iter(problems.values()))
        exact = solve_exact(some, max_jobs=max_jobs)
        instances.append(
            {
                "index": index,
                "n_jobs": len(some.jobs),
                "capacity": some.profile.capacity,
                "optimal_excessive_wait_hours": (
                    exact.best_score.total_excessive_wait / 3600.0
                ),
                "optimal_total_slowdown": exact.best_score.total_slowdown,
                "exact_nodes_visited": exact.nodes_visited,
            }
        )
        for algorithm, heuristic in POLICIES:
            problem = problems[heuristic]
            for L in limits:
                result = DiscrepancySearch(
                    algorithm, node_limit=L, engine="fast"
                ).search(problem)
                assert not (result.best_score < exact.best_score), (
                    f"instance {index}: {algorithm} at L={L} beat the exact "
                    "optimum — the oracle is broken"
                )
                assert isinstance(result.best_score, ScheduleScore)
                cells[(algorithm, heuristic, L)].append(
                    _gap_fields(result.best_score, exact.best_score)
                )
        say(f"instance {index + 1}/{n} done (n_jobs={len(some.jobs)})")

    rows: list[dict[str, Any]] = []
    for (algorithm, heuristic, L), triples in sorted(cells.items()):
        n_opt = sum(1 for opt, _, _ in triples if opt)
        gaps = [g for _, g, _ in triples]
        tied = [s for _, _, s in triples if s is not None]
        rows.append(
            {
                "algorithm": algorithm,
                "heuristic": heuristic,
                "node_limit": L,
                "n_instances": len(triples),
                "n_optimal": n_opt,
                "frac_optimal": n_opt / len(triples),
                "mean_excess_gap_hours": sum(gaps) / len(gaps),
                "max_excess_gap_hours": max(gaps),
                "excess_gap_hours": gaps,
                # Level-2 gap, conditioned on a level-1 tie (where it is
                # the deciding criterion); null when no instance ties.
                "mean_slowdown_gap_when_tied": (
                    sum(tied) / len(tied) if tied else None
                ),
                "n_level1_tied": len(tied),
            }
        )
        say(
            f"{algorithm}/{heuristic} @ L={L}: {n_opt}/{len(triples)} optimal, "
            f"mean gap {sum(gaps) / len(gaps):.3f} h"
        )

    top = limits[-1]
    top_rows = [r for r in rows if r["node_limit"] == top]
    tolerance = {
        # The smoke check re-runs --quick (a subset of instances), so the
        # floors are generous: a genuine regression craters frac_optimal
        # to ~0, noise does not.
        "node_limit": top,
        "min_frac_optimal": max(
            0.0, min(r["frac_optimal"] for r in top_rows) - 0.25
        ),
        "max_mean_excess_gap_hours": (
            max(r["mean_excess_gap_hours"] for r in top_rows) * 2.0 + 0.5
        ),
    }
    return {
        "schema": SCHEMA,
        "benchmark": "optimality-gap-small-instances",
        "quick": quick,
        "seed": seed,
        "max_jobs": max_jobs,
        "budgets": list(limits),
        "n_instances": n,
        "instances": instances,
        "rows": rows,
        "tolerance": tolerance,
    }


def check_report(
    fresh: dict[str, Any], committed: dict[str, Any]
) -> list[str]:
    """Compare a fresh (usually ``--quick``) run against the committed
    report's tolerance block; return human-readable failures (empty ==
    within tolerance)."""
    tol = committed.get("tolerance")
    if not tol:
        return [f"committed report has no tolerance block ({committed.get('schema')})"]
    failures: list[str] = []
    budgets = [
        L for L in fresh["budgets"] if L <= tol["node_limit"]
    ]
    if not budgets:
        return [
            f"fresh run has no budget at or below tolerance node_limit="
            f"{tol['node_limit']} (budgets {fresh['budgets']})"
        ]
    probe = max(budgets)
    for row in fresh["rows"]:
        if row["node_limit"] != probe:
            continue
        who = f"{row['algorithm']}/{row['heuristic']} @ L={probe}"
        if row["frac_optimal"] < tol["min_frac_optimal"]:
            failures.append(
                f"{who}: frac_optimal {row['frac_optimal']:.2f} below "
                f"tolerance {tol['min_frac_optimal']:.2f}"
            )
        if row["mean_excess_gap_hours"] > tol["max_mean_excess_gap_hours"]:
            failures.append(
                f"{who}: mean excess gap {row['mean_excess_gap_hours']:.3f} h "
                f"above tolerance {tol['max_mean_excess_gap_hours']:.3f} h"
            )
    return failures


def write_optgap(
    path: str | Path,
    quick: bool = False,
    n_instances: int | None = None,
    seed: int = DEFAULT_SEED,
    progress: Callable[[str], None] | None = None,
) -> dict[str, Any]:
    """Run the sweep and atomically write the JSON report to ``path``."""
    report = run_optgap(
        quick=quick, n_instances=n_instances, seed=seed, progress=progress
    )
    atomic_write_json(Path(path), report, indent=2, sort_keys=True)
    return report
