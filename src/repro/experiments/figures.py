"""One function per table/figure of the paper's evaluation.

Each function runs the simulations it needs at the active
:class:`~repro.experiments.config.ExperimentScale` and returns a
:class:`FigureSeries` whose ``render()`` prints the same rows/series the
paper plots.  The benchmark files under ``benchmarks/`` are thin wrappers
that time these functions and print their output; EXPERIMENTS.md records
paper-vs-measured shapes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Callable, Mapping, Sequence

from repro.core.search_tree import (
    dds_order,
    lds_order,
    num_nodes,
    num_paths,
)
from repro.experiments.config import ExperimentScale, current_scale
from repro.experiments.parallel import PolicySpec, RunSpec, WorkloadSpec, run_all
from repro.experiments.runner import PolicyRun
from repro.metrics.classes import avg_wait_grid
from repro.metrics.excessive import reference_thresholds
from repro.metrics.report import format_grid, format_series
from repro.workloads.calibration import MONTH_ORDER, MONTHS
from repro.workloads.scaling import scale_to_load
from repro.workloads.stats import (
    format_job_mix,
    format_runtime_table,
    job_mix_table,
    runtime_table,
)
from repro.workloads.synthetic import generate_month
from repro.workloads.trace import Workload

HIGH_LOAD = 0.9


@dataclass
class FigureSeries:
    """Printable reproduction of one figure.

    ``panels`` maps a panel title (e.g. ``"max wait (h)"``) to its series:
    ``{series name: [value per row label]}``.
    """

    figure: str
    title: str
    row_labels: list[str]
    panels: dict[str, dict[str, list[float]]]
    notes: list[str] = field(default_factory=list)
    text: str | None = None  # pre-rendered body (used by table/tree figures)

    def render(self) -> str:
        parts = [f"== {self.figure}: {self.title} =="]
        parts.extend(f"   {note}" for note in self.notes)
        if self.text is not None:
            parts.append(self.text)
        for panel, series in self.panels.items():
            parts.append("")
            parts.append(
                format_series(panel, self.row_labels, series, fmt="{:.2f}")
            )
        return "\n".join(parts)


# ----------------------------------------------------------------------
# Workload caches: generating a month is deterministic in (name, seed,
# scale), so share them across figures.
# ----------------------------------------------------------------------
@lru_cache(maxsize=64)
def _month(name: str, seed: int, scale: float) -> Workload:
    return generate_month(name, seed=seed, scale=scale)


@lru_cache(maxsize=64)
def _month_at_load(name: str, seed: int, scale: float, load: float) -> Workload:
    return scale_to_load(_month(name, seed, scale), load)


def _workloads(
    exp: ExperimentScale,
    load: float | None = None,
    months: Sequence[str] | None = None,
) -> list[Workload]:
    names = list(months) if months is not None else list(MONTH_ORDER)
    if load is None:
        return [_month(m, exp.seed, exp.job_scale) for m in names]
    return [_month_at_load(m, exp.seed, exp.job_scale, load) for m in names]


def _labels(workloads: Sequence[Workload]) -> list[str]:
    return [MONTHS[w.name].label for w in workloads]


# ----------------------------------------------------------------------
# Run-spec helpers: every simulation below goes through the parallel
# executor (repro.experiments.parallel), so figures transparently honour
# the session's --workers / run-cache configuration.
# ----------------------------------------------------------------------
def _specs(
    exp: ExperimentScale,
    load: float | None = None,
    months: Sequence[str] | None = None,
    estimates: str | None = None,
) -> list[WorkloadSpec]:
    names = list(months) if months is not None else list(MONTH_ORDER)
    return [
        WorkloadSpec(
            month=m,
            seed=exp.seed,
            scale=exp.job_scale,
            load=load,
            estimates=estimates,
            estimates_seed=exp.seed if estimates is not None else 0,
        )
        for m in names
    ]


def _spec_labels(specs: Sequence[WorkloadSpec]) -> list[str]:
    return [MONTHS[s.month].label for s in specs]


def _search_spec(
    algorithm: str,
    heuristic: str,
    node_limit: int,
    bound_hours: float | None = None,
    use_actual: bool = True,
) -> PolicySpec:
    bound = "dynB" if bound_hours is None else f"fixB{bound_hours:g}h"
    return PolicySpec(
        f"{algorithm}/{heuristic}/{bound}",
        node_limit=node_limit,
        use_actual_runtime=use_actual,
    )


def _backfill_spec(spec: str, use_actual: bool = True) -> PolicySpec:
    # node_limit is irrelevant for backfill policies; pin it to 0 so one
    # cached run serves every grid regardless of the search budget L.
    return PolicySpec(spec, node_limit=0, use_actual_runtime=use_actual)


# ----------------------------------------------------------------------
# Figure 1: the search tree and LDS/DDS iteration orders
# ----------------------------------------------------------------------
def fig1_tree(n_examples: Sequence[int] = (4, 8, 10, 12, 15)) -> FigureSeries:
    """Tree sizes (Fig 1d) and the 4-job LDS/DDS visit orders (Fig 1a-c,e,f)."""
    lines = ["Tree size as number of waiting jobs (Figure 1d):"]
    lines.append(f"{'# jobs':>8}{'# paths':>18}{'# nodes':>18}")
    for n in n_examples:
        lines.append(f"{n:>8}{num_paths(n):>18,}{num_nodes(n):>18,}")

    items = (1, 2, 3, 4)
    lds = ["-".join(map(str, (0, *p))) for p in lds_order(items)]
    dds = ["-".join(map(str, (0, *p))) for p in dds_order(items)]
    lines.append("")
    lines.append("LDS visit order over 4 jobs (iterations 0,1,2,... of Fig 1a-c):")
    lines.append("  " + "  ".join(lds))
    lines.append("DDS visit order over 4 jobs (iterations 0,1,2,... of Fig 1a,e,f):")
    lines.append("  " + "  ".join(dds))
    return FigureSeries(
        figure="Figure 1",
        title="Search tree and discrepancy-search orders",
        row_labels=[],
        panels={},
        text="\n".join(lines),
    )


# ----------------------------------------------------------------------
# Tables 3 and 4: workload characteristics, recomputed from the traces
# ----------------------------------------------------------------------
def table3_job_mix(exp: ExperimentScale | None = None) -> FigureSeries:
    exp = exp or current_scale()
    workloads = _workloads(exp)
    tables = [job_mix_table(w) for w in workloads]
    body = format_job_mix(tables)
    notes = [
        f"job scale {exp.job_scale:g}, seed {exp.seed}; compare against the",
        "published Table 3 values in repro.workloads.calibration.MONTHS",
    ]
    return FigureSeries(
        figure="Table 3",
        title="Monthly job mix (recomputed from synthetic traces)",
        row_labels=[],
        panels={},
        notes=notes,
        text=body,
    )


def table4_runtimes(exp: ExperimentScale | None = None) -> FigureSeries:
    exp = exp or current_scale()
    workloads = _workloads(exp)
    tables = [runtime_table(w) for w in workloads]
    body = format_runtime_table(tables)
    return FigureSeries(
        figure="Table 4",
        title="Distribution of actual job runtime (recomputed)",
        row_labels=[],
        panels={},
        text=body,
    )


# ----------------------------------------------------------------------
# Figure 2: sensitivity of DDS/lxf to the fixed target wait bound
# ----------------------------------------------------------------------
def fig2_fixed_bound_sensitivity(
    exp: ExperimentScale | None = None,
    omegas_hours: Sequence[float] = (50.0, 100.0, 300.0),
) -> FigureSeries:
    exp = exp or current_scale()
    specs = _specs(exp)
    L = exp.L(1000)
    grid = [
        RunSpec(w, _search_spec("dds", "lxf", L, bound_hours=omega_h))
        for omega_h in omegas_hours
        for w in specs
    ]
    runs = run_all(grid)
    panels: dict[str, dict[str, list[float]]] = {
        "max wait (h)": {},
        "avg bounded slowdown": {},
    }
    for i, omega_h in enumerate(omegas_hours):
        key = f"w={omega_h:g}h"
        chunk = runs[i * len(specs) : (i + 1) * len(specs)]
        panels["max wait (h)"][key] = [r.metrics.max_wait_hours for r in chunk]
        panels["avg bounded slowdown"][key] = [
            r.metrics.avg_bounded_slowdown for r in chunk
        ]
    return FigureSeries(
        figure="Figure 2",
        title="DDS/lxf sensitivity to fixed target bound (original load)",
        row_labels=_spec_labels(specs),
        panels=panels,
        notes=[f"R*=T, L={L} (paper: 1K at full scale)"],
    )


# ----------------------------------------------------------------------
# Shared three-policy comparison used by Figures 3, 4 and 8
# ----------------------------------------------------------------------
def _three_policy_runs(
    specs: Sequence[WorkloadSpec],
    L_for: Mapping[str, int],
    use_actual: bool = True,
) -> dict[str, list[PolicyRun]]:
    """Run FCFS-BF, LXF-BF and DDS/lxf/dynB over the workloads."""
    grid = []
    for w in specs:
        grid.append(RunSpec(w, _backfill_spec("fcfs-bf", use_actual), label="FCFS-BF"))
        grid.append(RunSpec(w, _backfill_spec("lxf-bf", use_actual), label="LXF-BF"))
        grid.append(
            RunSpec(
                w,
                _search_spec("dds", "lxf", L_for[w.month], use_actual=use_actual),
                label="DDS/lxf/dynB",
            )
        )
    results = run_all(grid)
    runs: dict[str, list[PolicyRun]] = {"FCFS-BF": [], "LXF-BF": [], "DDS/lxf/dynB": []}
    for spec, run in zip(grid, results):
        runs[spec.label].append(run)
    return runs


def _comparison_panels(
    runs: dict[str, list[PolicyRun]],
    with_excessive: bool = False,
    with_queue: bool = False,
) -> dict[str, dict[str, list[float]]]:
    names = list(runs)
    panels: dict[str, dict[str, list[float]]] = {
        "avg wait (h)": {n: [r.metrics.avg_wait_hours for r in runs[n]] for n in names},
        "max wait (h)": {n: [r.metrics.max_wait_hours for r in runs[n]] for n in names},
        "avg bounded slowdown": {
            n: [r.metrics.avg_bounded_slowdown for r in runs[n]] for n in names
        },
    }
    if with_queue:
        panels["avg queue length"] = {
            n: [r.avg_queue_length for r in runs[n]] for n in names
        }
    if with_excessive:
        reference = runs["FCFS-BF"]
        thresholds = [reference_thresholds(r.jobs) for r in reference]
        for panel, t_idx in (
            ("total excessive wait vs FCFS-BF 98th pct (h)", 1),
            ("total excessive wait vs FCFS-BF max (h)", 0),
        ):
            panels[panel] = {
                n: [
                    runs[n][i].excessive(thresholds[i][t_idx]).total_hours
                    for i in range(len(runs[n]))
                ]
                for n in names
            }
        panels["# jobs with excessive wait vs FCFS-BF max"] = {
            n: [
                float(runs[n][i].excessive(thresholds[i][0]).count)
                for i in range(len(runs[n]))
            ]
            for n in names
        }
        panels["avg excessive wait vs FCFS-BF max (h)"] = {
            n: [
                runs[n][i].excessive(thresholds[i][0]).avg_hours
                for i in range(len(runs[n]))
            ]
            for n in names
        }
    return panels


def fig3_original_load(exp: ExperimentScale | None = None) -> FigureSeries:
    exp = exp or current_scale()
    specs = _specs(exp)
    L = exp.L(1000)
    runs = _three_policy_runs(specs, {w.month: L for w in specs})
    return FigureSeries(
        figure="Figure 3",
        title="Policy comparison under original load",
        row_labels=_spec_labels(specs),
        panels=_comparison_panels(runs),
        notes=[f"R*=T, L={L} (paper: 1K at full scale)"],
    )


def fig4_high_load(exp: ExperimentScale | None = None) -> FigureSeries:
    exp = exp or current_scale()
    specs = _specs(exp, load=HIGH_LOAD)
    # Paper: L = 1K everywhere except January 2004 at 8K.
    L_for = {
        w.month: exp.L(8000) if w.month == "2004-01" else exp.L(1000)
        for w in specs
    }
    runs = _three_policy_runs(specs, L_for)
    return FigureSeries(
        figure="Figure 4",
        title=f"Policy comparison under high load (rho={HIGH_LOAD})",
        row_labels=_spec_labels(specs),
        panels=_comparison_panels(runs, with_excessive=True, with_queue=True),
        notes=[
            f"R*=T; L={exp.L(1000)} except 1/04 at {exp.L(8000)} "
            "(paper: 1K / 8K at full scale)"
        ],
    )


# ----------------------------------------------------------------------
# Figure 5: per-job-class average wait, July 2003, high load
# ----------------------------------------------------------------------
def fig5_job_classes(
    exp: ExperimentScale | None = None, month: str = "2003-07"
) -> FigureSeries:
    exp = exp or current_scale()
    spec = WorkloadSpec(month, seed=exp.seed, scale=exp.job_scale, load=HIGH_LOAD)
    L = exp.L(1000)
    results = run_all(
        [
            RunSpec(spec, _backfill_spec("fcfs-bf"), label="FCFS-BF"),
            RunSpec(spec, _backfill_spec("lxf-bf"), label="LXF-BF"),
            RunSpec(spec, _search_spec("dds", "lxf", L), label="DDS/lxf/dynB"),
        ]
    )
    runs = dict(zip(("FCFS-BF", "LXF-BF", "DDS/lxf/dynB"), results))
    blocks = []
    for name, run in runs.items():
        grid = avg_wait_grid(run.jobs)
        blocks.append(format_grid(f"{name}: avg wait (h) per N x T class", grid))
    return FigureSeries(
        figure="Figure 5",
        title=f"Average wait per job class, {MONTHS[month].label}, rho={HIGH_LOAD}",
        row_labels=[],
        panels={},
        notes=[f"R*=T, L={L}"],
        text="\n\n".join(blocks),
    )


# ----------------------------------------------------------------------
# Figure 6: impact of the node limit L, January 2004, high load
# ----------------------------------------------------------------------
def fig6_node_limit(
    exp: ExperimentScale | None = None,
    month: str = "2004-01",
    paper_limits: Sequence[int] = (1000, 2000, 4000, 8000, 10000, 100000),
) -> FigureSeries:
    exp = exp or current_scale()
    spec = WorkloadSpec(month, seed=exp.seed, scale=exp.job_scale, load=HIGH_LOAD)
    limits = [exp.L(l) for l in paper_limits]
    row_labels = [f"L={l}" for l in limits]
    results = run_all(
        [
            RunSpec(spec, _backfill_spec("fcfs-bf"), label="FCFS-BF"),
            RunSpec(spec, _backfill_spec("lxf-bf"), label="LXF-BF"),
        ]
        + [
            RunSpec(spec, _search_spec("dds", "lxf", l), label=f"L={l}")
            for l in limits
        ]
    )
    fcfs_run, lxf_run, dds_runs = results[0], results[1], results[2:]
    t_max, _ = reference_thresholds(fcfs_run.jobs)

    def row(value_fn: Callable[[PolicyRun], float]) -> dict[str, list[float]]:
        return {
            "FCFS-BF": [value_fn(fcfs_run)] * len(limits),
            "LXF-BF": [value_fn(lxf_run)] * len(limits),
            "DDS/lxf/dynB": [value_fn(r) for r in dds_runs],
        }

    panels = {
        "total excessive wait vs FCFS-BF max (h)": row(
            lambda r: r.excessive(t_max).total_hours
        ),
        "max wait (h)": row(lambda r: r.metrics.max_wait_hours),
        "avg wait (h)": row(lambda r: r.metrics.avg_wait_hours),
        "avg bounded slowdown": row(lambda r: r.metrics.avg_bounded_slowdown),
    }
    return FigureSeries(
        figure="Figure 6",
        title=f"Impact of node limit L, {MONTHS[month].label}, rho={HIGH_LOAD}",
        row_labels=row_labels,
        panels=panels,
        notes=[f"paper limits {list(paper_limits)} scaled to {limits}"],
    )


# ----------------------------------------------------------------------
# Figure 7: search algorithms and branching heuristics
# ----------------------------------------------------------------------
def fig7_algorithms(exp: ExperimentScale | None = None) -> FigureSeries:
    exp = exp or current_scale()
    specs = _specs(exp, load=HIGH_LOAD)
    L = exp.L(2000)
    policies = {
        "DDS/fcfs/dynB": _search_spec("dds", "fcfs", L),
        "DDS/lxf/dynB": _search_spec("dds", "lxf", L),
        "LDS/lxf/dynB": _search_spec("lds", "lxf", L),
    }
    grid = [RunSpec(w, _backfill_spec("fcfs-bf"), label="FCFS-BF") for w in specs]
    grid += [
        RunSpec(w, policy, label=key)
        for key, policy in policies.items()
        for w in specs
    ]
    results = run_all(grid)
    thresholds = [
        reference_thresholds(r.jobs)[0] for r in results[: len(specs)]
    ]
    runs: dict[str, list[PolicyRun]] = {}
    for i, key in enumerate(policies):
        lo = (i + 1) * len(specs)
        runs[key] = results[lo : lo + len(specs)]
    panels = {
        "avg bounded slowdown": {
            k: [r.metrics.avg_bounded_slowdown for r in v] for k, v in runs.items()
        },
        "total excessive wait vs FCFS-BF max (h)": {
            k: [v[i].excessive(thresholds[i]).total_hours for i in range(len(v))]
            for k, v in runs.items()
        },
    }
    return FigureSeries(
        figure="Figure 7",
        title=f"Search algorithms and branching heuristics (rho={HIGH_LOAD})",
        row_labels=_spec_labels(specs),
        panels=panels,
        notes=[f"R*=T, L={L} (paper: 2K at full scale)"],
    )


# ----------------------------------------------------------------------
# Figure 8: planning with inaccurate requested runtimes (R* = R)
# ----------------------------------------------------------------------
def fig8_requested_runtimes(exp: ExperimentScale | None = None) -> FigureSeries:
    exp = exp or current_scale()
    specs = _specs(exp, load=HIGH_LOAD, estimates="menu")
    L = exp.L(4000)
    runs = _three_policy_runs(
        specs, {w.month: L for w in specs}, use_actual=False
    )
    panels = _comparison_panels(runs, with_excessive=True)
    # The paper's Fig 8 shows four panels; drop the two count/avg extras.
    panels.pop("# jobs with excessive wait vs FCFS-BF max", None)
    panels.pop("avg excessive wait vs FCFS-BF max (h)", None)
    panels.pop("total excessive wait vs FCFS-BF 98th pct (h)", None)
    return FigureSeries(
        figure="Figure 8",
        title=f"Inaccurate requested runtimes (R*=R, rho={HIGH_LOAD})",
        row_labels=_spec_labels(specs),
        panels=panels,
        notes=[f"menu estimate model, L={L} (paper: 4K at full scale)"],
    )
