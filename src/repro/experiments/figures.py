"""One function per table/figure of the paper's evaluation.

Each function runs the simulations it needs at the active
:class:`~repro.experiments.config.ExperimentScale` and returns a
:class:`FigureSeries` whose ``render()`` prints the same rows/series the
paper plots.  The benchmark files under ``benchmarks/`` are thin wrappers
that time these functions and print their output; EXPERIMENTS.md records
paper-vs-measured shapes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Mapping, Sequence

from repro.backfill import fcfs_backfill, lxf_backfill
from repro.core.scheduler import make_policy
from repro.core.search_tree import (
    dds_order,
    lds_order,
    num_nodes,
    num_paths,
)
from repro.experiments.config import ExperimentScale, current_scale
from repro.experiments.runner import PolicyRun, simulate
from repro.metrics.classes import avg_wait_grid
from repro.metrics.excessive import reference_thresholds
from repro.metrics.report import format_grid, format_series
from repro.util.timeunits import HOUR
from repro.workloads.calibration import MONTH_ORDER, MONTHS
from repro.workloads.estimates import MenuEstimates, apply_estimates
from repro.workloads.scaling import scale_to_load
from repro.workloads.stats import (
    format_job_mix,
    format_runtime_table,
    job_mix_table,
    runtime_table,
)
from repro.workloads.synthetic import generate_month
from repro.workloads.trace import Workload

HIGH_LOAD = 0.9


@dataclass
class FigureSeries:
    """Printable reproduction of one figure.

    ``panels`` maps a panel title (e.g. ``"max wait (h)"``) to its series:
    ``{series name: [value per row label]}``.
    """

    figure: str
    title: str
    row_labels: list[str]
    panels: dict[str, dict[str, list[float]]]
    notes: list[str] = field(default_factory=list)
    text: str | None = None  # pre-rendered body (used by table/tree figures)

    def render(self) -> str:
        parts = [f"== {self.figure}: {self.title} =="]
        parts.extend(f"   {note}" for note in self.notes)
        if self.text is not None:
            parts.append(self.text)
        for panel, series in self.panels.items():
            parts.append("")
            parts.append(
                format_series(panel, self.row_labels, series, fmt="{:.2f}")
            )
        return "\n".join(parts)


# ----------------------------------------------------------------------
# Workload caches: generating a month is deterministic in (name, seed,
# scale), so share them across figures.
# ----------------------------------------------------------------------
@lru_cache(maxsize=64)
def _month(name: str, seed: int, scale: float) -> Workload:
    return generate_month(name, seed=seed, scale=scale)


@lru_cache(maxsize=64)
def _month_at_load(name: str, seed: int, scale: float, load: float) -> Workload:
    return scale_to_load(_month(name, seed, scale), load)


def _workloads(
    exp: ExperimentScale,
    load: float | None = None,
    months: Sequence[str] | None = None,
) -> list[Workload]:
    names = list(months) if months is not None else list(MONTH_ORDER)
    if load is None:
        return [_month(m, exp.seed, exp.job_scale) for m in names]
    return [_month_at_load(m, exp.seed, exp.job_scale, load) for m in names]


def _labels(workloads: Sequence[Workload]) -> list[str]:
    return [MONTHS[w.name].label for w in workloads]


# ----------------------------------------------------------------------
# Figure 1: the search tree and LDS/DDS iteration orders
# ----------------------------------------------------------------------
def fig1_tree(n_examples: Sequence[int] = (4, 8, 10, 12, 15)) -> FigureSeries:
    """Tree sizes (Fig 1d) and the 4-job LDS/DDS visit orders (Fig 1a-c,e,f)."""
    lines = ["Tree size as number of waiting jobs (Figure 1d):"]
    lines.append(f"{'# jobs':>8}{'# paths':>18}{'# nodes':>18}")
    for n in n_examples:
        lines.append(f"{n:>8}{num_paths(n):>18,}{num_nodes(n):>18,}")

    items = (1, 2, 3, 4)
    lds = ["-".join(map(str, (0, *p))) for p in lds_order(items)]
    dds = ["-".join(map(str, (0, *p))) for p in dds_order(items)]
    lines.append("")
    lines.append("LDS visit order over 4 jobs (iterations 0,1,2,... of Fig 1a-c):")
    lines.append("  " + "  ".join(lds))
    lines.append("DDS visit order over 4 jobs (iterations 0,1,2,... of Fig 1a,e,f):")
    lines.append("  " + "  ".join(dds))
    return FigureSeries(
        figure="Figure 1",
        title="Search tree and discrepancy-search orders",
        row_labels=[],
        panels={},
        text="\n".join(lines),
    )


# ----------------------------------------------------------------------
# Tables 3 and 4: workload characteristics, recomputed from the traces
# ----------------------------------------------------------------------
def table3_job_mix(exp: ExperimentScale | None = None) -> FigureSeries:
    exp = exp or current_scale()
    workloads = _workloads(exp)
    tables = [job_mix_table(w) for w in workloads]
    body = format_job_mix(tables)
    notes = [
        f"job scale {exp.job_scale:g}, seed {exp.seed}; compare against the",
        "published Table 3 values in repro.workloads.calibration.MONTHS",
    ]
    return FigureSeries(
        figure="Table 3",
        title="Monthly job mix (recomputed from synthetic traces)",
        row_labels=[],
        panels={},
        notes=notes,
        text=body,
    )


def table4_runtimes(exp: ExperimentScale | None = None) -> FigureSeries:
    exp = exp or current_scale()
    workloads = _workloads(exp)
    tables = [runtime_table(w) for w in workloads]
    body = format_runtime_table(tables)
    return FigureSeries(
        figure="Table 4",
        title="Distribution of actual job runtime (recomputed)",
        row_labels=[],
        panels={},
        text=body,
    )


# ----------------------------------------------------------------------
# Figure 2: sensitivity of DDS/lxf to the fixed target wait bound
# ----------------------------------------------------------------------
def fig2_fixed_bound_sensitivity(
    exp: ExperimentScale | None = None,
    omegas_hours: Sequence[float] = (50.0, 100.0, 300.0),
) -> FigureSeries:
    exp = exp or current_scale()
    workloads = _workloads(exp)
    L = exp.L(1000)
    panels: dict[str, dict[str, list[float]]] = {
        "max wait (h)": {},
        "avg bounded slowdown": {},
    }
    for omega_h in omegas_hours:
        key = f"w={omega_h:g}h"
        max_waits, slowdowns = [], []
        for w in workloads:
            policy = make_policy("dds", "lxf", bound=omega_h * HOUR, node_limit=L)
            run = simulate(w, policy)
            max_waits.append(run.metrics.max_wait_hours)
            slowdowns.append(run.metrics.avg_bounded_slowdown)
        panels["max wait (h)"][key] = max_waits
        panels["avg bounded slowdown"][key] = slowdowns
    return FigureSeries(
        figure="Figure 2",
        title="DDS/lxf sensitivity to fixed target bound (original load)",
        row_labels=_labels(workloads),
        panels=panels,
        notes=[f"R*=T, L={L} (paper: 1K at full scale)"],
    )


# ----------------------------------------------------------------------
# Shared three-policy comparison used by Figures 3, 4 and 8
# ----------------------------------------------------------------------
def _three_policy_runs(
    workloads: Sequence[Workload],
    L_for: Mapping[str, int],
    use_actual: bool = True,
) -> dict[str, list[PolicyRun]]:
    """Run FCFS-BF, LXF-BF and DDS/lxf/dynB over the workloads."""
    runs: dict[str, list[PolicyRun]] = {"FCFS-BF": [], "LXF-BF": [], "DDS/lxf/dynB": []}
    for w in workloads:
        runs["FCFS-BF"].append(simulate(w, fcfs_backfill(use_actual)))
        runs["LXF-BF"].append(simulate(w, lxf_backfill(use_actual)))
        dds = make_policy(
            "dds",
            "lxf",
            node_limit=L_for[w.name],
            runtime_source=use_actual,
        )
        runs["DDS/lxf/dynB"].append(simulate(w, dds))
    return runs


def _comparison_panels(
    runs: dict[str, list[PolicyRun]],
    with_excessive: bool = False,
    with_queue: bool = False,
) -> dict[str, dict[str, list[float]]]:
    names = list(runs)
    panels: dict[str, dict[str, list[float]]] = {
        "avg wait (h)": {n: [r.metrics.avg_wait_hours for r in runs[n]] for n in names},
        "max wait (h)": {n: [r.metrics.max_wait_hours for r in runs[n]] for n in names},
        "avg bounded slowdown": {
            n: [r.metrics.avg_bounded_slowdown for r in runs[n]] for n in names
        },
    }
    if with_queue:
        panels["avg queue length"] = {
            n: [r.avg_queue_length for r in runs[n]] for n in names
        }
    if with_excessive:
        reference = runs["FCFS-BF"]
        thresholds = [reference_thresholds(r.jobs) for r in reference]
        for panel, t_idx in (
            ("total excessive wait vs FCFS-BF 98th pct (h)", 1),
            ("total excessive wait vs FCFS-BF max (h)", 0),
        ):
            panels[panel] = {
                n: [
                    runs[n][i].excessive(thresholds[i][t_idx]).total_hours
                    for i in range(len(runs[n]))
                ]
                for n in names
            }
        panels["# jobs with excessive wait vs FCFS-BF max"] = {
            n: [
                float(runs[n][i].excessive(thresholds[i][0]).count)
                for i in range(len(runs[n]))
            ]
            for n in names
        }
        panels["avg excessive wait vs FCFS-BF max (h)"] = {
            n: [
                runs[n][i].excessive(thresholds[i][0]).avg_hours
                for i in range(len(runs[n]))
            ]
            for n in names
        }
    return panels


def fig3_original_load(exp: ExperimentScale | None = None) -> FigureSeries:
    exp = exp or current_scale()
    workloads = _workloads(exp)
    L = exp.L(1000)
    runs = _three_policy_runs(workloads, {w.name: L for w in workloads})
    return FigureSeries(
        figure="Figure 3",
        title="Policy comparison under original load",
        row_labels=_labels(workloads),
        panels=_comparison_panels(runs),
        notes=[f"R*=T, L={L} (paper: 1K at full scale)"],
    )


def fig4_high_load(exp: ExperimentScale | None = None) -> FigureSeries:
    exp = exp or current_scale()
    workloads = _workloads(exp, load=HIGH_LOAD)
    # Paper: L = 1K everywhere except January 2004 at 8K.
    L_for = {
        w.name: exp.L(8000) if w.name == "2004-01" else exp.L(1000)
        for w in workloads
    }
    runs = _three_policy_runs(workloads, L_for)
    return FigureSeries(
        figure="Figure 4",
        title=f"Policy comparison under high load (rho={HIGH_LOAD})",
        row_labels=_labels(workloads),
        panels=_comparison_panels(runs, with_excessive=True, with_queue=True),
        notes=[
            f"R*=T; L={exp.L(1000)} except 1/04 at {exp.L(8000)} "
            "(paper: 1K / 8K at full scale)"
        ],
    )


# ----------------------------------------------------------------------
# Figure 5: per-job-class average wait, July 2003, high load
# ----------------------------------------------------------------------
def fig5_job_classes(
    exp: ExperimentScale | None = None, month: str = "2003-07"
) -> FigureSeries:
    exp = exp or current_scale()
    workload = _month_at_load(month, exp.seed, exp.job_scale, HIGH_LOAD)
    L = exp.L(1000)
    runs = {
        "FCFS-BF": simulate(workload, fcfs_backfill()),
        "LXF-BF": simulate(workload, lxf_backfill()),
        "DDS/lxf/dynB": simulate(
            workload, make_policy("dds", "lxf", node_limit=L)
        ),
    }
    blocks = []
    for name, run in runs.items():
        grid = avg_wait_grid(run.jobs)
        blocks.append(format_grid(f"{name}: avg wait (h) per N x T class", grid))
    return FigureSeries(
        figure="Figure 5",
        title=f"Average wait per job class, {MONTHS[month].label}, rho={HIGH_LOAD}",
        row_labels=[],
        panels={},
        notes=[f"R*=T, L={L}"],
        text="\n\n".join(blocks),
    )


# ----------------------------------------------------------------------
# Figure 6: impact of the node limit L, January 2004, high load
# ----------------------------------------------------------------------
def fig6_node_limit(
    exp: ExperimentScale | None = None,
    month: str = "2004-01",
    paper_limits: Sequence[int] = (1000, 2000, 4000, 8000, 10000, 100000),
) -> FigureSeries:
    exp = exp or current_scale()
    workload = _month_at_load(month, exp.seed, exp.job_scale, HIGH_LOAD)
    fcfs_run = simulate(workload, fcfs_backfill())
    lxf_run = simulate(workload, lxf_backfill())
    t_max, _ = reference_thresholds(fcfs_run.jobs)

    limits = [exp.L(l) for l in paper_limits]
    row_labels = [f"L={l}" for l in limits]
    dds_runs = [
        simulate(workload, make_policy("dds", "lxf", node_limit=l)) for l in limits
    ]

    def row(value_fn) -> dict[str, list[float]]:
        return {
            "FCFS-BF": [value_fn(fcfs_run)] * len(limits),
            "LXF-BF": [value_fn(lxf_run)] * len(limits),
            "DDS/lxf/dynB": [value_fn(r) for r in dds_runs],
        }

    panels = {
        "total excessive wait vs FCFS-BF max (h)": row(
            lambda r: r.excessive(t_max).total_hours
        ),
        "max wait (h)": row(lambda r: r.metrics.max_wait_hours),
        "avg wait (h)": row(lambda r: r.metrics.avg_wait_hours),
        "avg bounded slowdown": row(lambda r: r.metrics.avg_bounded_slowdown),
    }
    return FigureSeries(
        figure="Figure 6",
        title=f"Impact of node limit L, {MONTHS[month].label}, rho={HIGH_LOAD}",
        row_labels=row_labels,
        panels=panels,
        notes=[f"paper limits {list(paper_limits)} scaled to {limits}"],
    )


# ----------------------------------------------------------------------
# Figure 7: search algorithms and branching heuristics
# ----------------------------------------------------------------------
def fig7_algorithms(exp: ExperimentScale | None = None) -> FigureSeries:
    exp = exp or current_scale()
    workloads = _workloads(exp, load=HIGH_LOAD)
    L = exp.L(2000)
    policies = {
        "DDS/fcfs/dynB": lambda: make_policy("dds", "fcfs", node_limit=L),
        "DDS/lxf/dynB": lambda: make_policy("dds", "lxf", node_limit=L),
        "LDS/lxf/dynB": lambda: make_policy("lds", "lxf", node_limit=L),
    }
    runs: dict[str, list[PolicyRun]] = {k: [] for k in policies}
    thresholds = []
    for w in workloads:
        fcfs_run = simulate(w, fcfs_backfill())
        thresholds.append(reference_thresholds(fcfs_run.jobs)[0])
        for key, factory in policies.items():
            runs[key].append(simulate(w, factory()))
    panels = {
        "avg bounded slowdown": {
            k: [r.metrics.avg_bounded_slowdown for r in v] for k, v in runs.items()
        },
        "total excessive wait vs FCFS-BF max (h)": {
            k: [v[i].excessive(thresholds[i]).total_hours for i in range(len(v))]
            for k, v in runs.items()
        },
    }
    return FigureSeries(
        figure="Figure 7",
        title=f"Search algorithms and branching heuristics (rho={HIGH_LOAD})",
        row_labels=_labels(workloads),
        panels=panels,
        notes=[f"R*=T, L={L} (paper: 2K at full scale)"],
    )


# ----------------------------------------------------------------------
# Figure 8: planning with inaccurate requested runtimes (R* = R)
# ----------------------------------------------------------------------
def fig8_requested_runtimes(exp: ExperimentScale | None = None) -> FigureSeries:
    exp = exp or current_scale()
    base = _workloads(exp, load=HIGH_LOAD)
    workloads = [
        apply_estimates(w, MenuEstimates(), seed=exp.seed) for w in base
    ]
    L = exp.L(4000)
    runs = _three_policy_runs(
        workloads, {w.name: L for w in workloads}, use_actual=False
    )
    panels = _comparison_panels(runs, with_excessive=True)
    # The paper's Fig 8 shows four panels; drop the two count/avg extras.
    panels.pop("# jobs with excessive wait vs FCFS-BF max", None)
    panels.pop("avg excessive wait vs FCFS-BF max (h)", None)
    panels.pop("total excessive wait vs FCFS-BF 98th pct (h)", None)
    return FigureSeries(
        figure="Figure 8",
        title=f"Inaccurate requested runtimes (R*=R, rho={HIGH_LOAD})",
        row_labels=_labels(workloads),
        panels=panels,
        notes=[f"menu estimate model, L={L} (paper: 4K at full scale)"],
    )
