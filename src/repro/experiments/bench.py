"""Search hot-path benchmark: the ``BENCH_search.json`` perf trajectory.

The scheduler's cost is dominated by the per-decision discrepancy search
(the paper's §2.3 overhead measurement), so this module times exactly that
operation: one node-limited search over a fixed 30-job decision point on a
partially busy 128-node machine — the same scenario as
``benchmarks/bench_overhead.py`` — for the paper's two flagship policies
(``DDS/lxf/dynB`` and ``LDS/fcfs/dynB``) at L ∈ {1K, 10K, 100K}.

Each configuration is timed for:

- both serial search engines (the allocation-free ``"fast"`` hot path and
  the ``"reference"`` executable spec; see :mod:`repro.core.search`),
  asserted bit-identical — a perf number measured against a wrong result
  is worthless;
- the ``"parallel"`` engine at ``search_workers`` workers, *also* asserted
  bit-identical to ``"fast"`` (its determinism contract holds at any
  budget);
- a ``prune=True`` ablation of the fast engine, measuring what the
  branch-and-bound extension buys (no identity assert: pruning legitimately
  changes node accounting);
- the ``"compiled"`` engine when the optional C kernel is importable
  (``repro.core.ckernel.have_compiled``), asserted bit-identical to
  ``"fast"`` — reports record an honest ``compiled_available`` flag so a
  pure-python report is never mistaken for a compiled one.

The report records nodes/sec and wall seconds per decision per row, plus
per-config speedup ratios: ``fast`` over ``reference``, ``parallel[w=N]``
over ``fast``, ``prune`` over ``fast``, and ``compiled`` over
``reference`` (the ISSUE's ≥6x acceptance floor is stated against the
reference spec).  A final ``e2e`` section replays the first
:data:`E2E_DECISIONS` decision points of a real simulated month and
records whole-run decisions/sec per engine, so kernel wins are measured
end-to-end and not just in the raw node loop.

``repro bench`` writes the report to ``BENCH_search.json`` at the repo
root so future perf PRs have a committed baseline to beat; the
``bench-smoke`` CI job regenerates it with ``--quick`` on every push.
"""

from __future__ import annotations

import platform
import sys
import time
from pathlib import Path
from typing import Any, Callable

from repro.core.branching import order_jobs
from repro.core.ckernel import have_compiled
from repro.core.objective import DynamicBound, ObjectiveConfig
from repro.core.profile import AvailabilityProfile
from repro.core.search import DiscrepancySearch, SearchProblem, SearchResult
from repro.simulator.job import Job
from repro.util.atomio import atomic_write_json
from repro.util.rng import RngStream
from repro.util.timeunits import HOUR

#: Report format version (bump on incompatible layout changes).
#: v2: per-row ``prune``/``search_workers`` fields, parallel-engine rows,
#: prune-ablation rows, and the new speedup key families.
#: v3: honest ``compiled_available`` field, compiled-engine rows and the
#: ``:compiled`` speedup family (present only when the extension is
#: built), and the end-to-end ``e2e`` decisions/sec section (simulator
#: replay, not just the raw node loop) with its own tolerance band.
SCHEMA = "repro-bench-search/v3"

#: The two flagship policy shapes the paper benchmarks (§2.3, §3).
POLICIES: tuple[tuple[str, str], ...] = (("dds", "lxf"), ("lds", "fcfs"))

FULL_LIMITS: tuple[int, ...] = (1_000, 10_000, 100_000)
#: ``--quick`` keeps CI smoke runs in seconds, not minutes.
QUICK_LIMITS: tuple[int, ...] = (1_000, 10_000)

#: End-to-end replay slice: the first N decision points of a real
#: simulated month at this scale/budget.  Small enough to keep the whole
#: section under ~2s per engine, long enough to average over genuinely
#: different queue states.
E2E_DECISIONS = 120
E2E_SCALE = 0.05
E2E_NODE_LIMIT = 1_000
E2E_MONTH = "2003-07"


def build_problem(heuristic: str = "lxf", n_jobs: int = 30) -> SearchProblem:
    """A fixed, deterministic decision point: ``n_jobs`` waiting jobs
    ordered by ``heuristic`` on a partially busy 128-node machine.

    Mirrors the 30-job scenario of ``benchmarks/bench_overhead.py`` (the
    paper's own overhead measurement uses a 30-job tree) but routes the
    consideration order through the real branching heuristic, so lxf and
    fcfs benchmarks explore genuinely different trees.
    """
    rng = RngStream(7, "overhead")
    jobs = []
    for i in range(n_jobs):
        job = Job(
            job_id=i,
            submit_time=float(rng.uniform(0, 4 * HOUR)),
            nodes=int(rng.integers(1, 65)),
            runtime=float(rng.uniform(600, 12 * HOUR)),
        )
        job.mark_waiting()
        jobs.append(job)
    now = 4 * HOUR
    bound = DynamicBound()
    ordered = order_jobs(jobs, heuristic, now)
    profile = AvailabilityProfile.from_segments(
        128, [(4 * HOUR, 40), (6 * HOUR, 90), (9 * HOUR, 128)]
    )
    return SearchProblem(
        jobs=tuple(ordered),
        profile=profile,
        now=now,
        omega=bound.value(now, ordered),
        objective=ObjectiveConfig(bound=bound),
    )


def _fingerprint(result: SearchResult) -> tuple[Any, ...]:
    """The fields the ISSUE's bit-identity contract covers."""
    return (
        tuple(j.job_id for j in result.best_order),
        tuple(sorted(result.best_starts.items())),
        result.best_score,
        result.nodes_visited,
        result.leaves_evaluated,
    )


def time_search(
    problem: SearchProblem,
    algorithm: str,
    node_limit: int,
    engine: str,
    repeats: int = 3,
    prune: bool = False,
    search_workers: int = 1,
) -> tuple[SearchResult, float]:
    """Run the search ``repeats`` times; return (result, best wall seconds)."""
    searcher = DiscrepancySearch(
        algorithm,
        node_limit=node_limit,
        engine=engine,
        prune=prune,
        search_workers=search_workers,
    )
    best = float("inf")
    result: SearchResult | None = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = searcher.search(problem)
        best = min(best, time.perf_counter() - t0)
    assert result is not None
    return result, best


def time_end_to_end(
    engine: str, repeats: int = 2, decisions: int = E2E_DECISIONS
) -> dict[str, Any]:
    """Whole-run throughput: replay a slice of a simulated month and
    measure decisions/sec *including* the simulator's event loop and the
    scheduler's bookkeeping — the number a kernel win must move for users,
    as opposed to the raw node-loop rows above.  Best-of-``repeats``."""
    from repro.core.scheduler import SearchSchedulingPolicy
    from repro.experiments.profiling import time_decision_slice
    from repro.workloads.synthetic import generate_month

    workload = generate_month(E2E_MONTH, seed=2005, scale=E2E_SCALE)
    best = float("inf")
    ran = 0
    for _ in range(repeats):
        policy = SearchSchedulingPolicy(
            "dds", "lxf", node_limit=E2E_NODE_LIMIT, engine=engine
        )
        ran, seconds = time_decision_slice(workload, policy, decisions)
        best = min(best, seconds)
    return {
        "policy": f"DDS/lxf/dynB@L={E2E_NODE_LIMIT}",
        "engine": engine,
        "month": E2E_MONTH,
        "scale": E2E_SCALE,
        "decisions": ran,
        "seconds": best,
        "decisions_per_second": ran / best,
    }


def run_bench(
    quick: bool = False,
    repeats: int = 3,
    search_workers: int = 4,
    progress: Callable[[str], None] | None = None,
    limits: tuple[int, ...] | None = None,
) -> dict[str, Any]:
    """Time every (policy, L, variant) combination and build the report.

    ``limits`` overrides the budget sweep (tests use tiny budgets so the
    full report machinery — every row family, every identity assert —
    runs in milliseconds); by default ``quick`` picks between
    :data:`QUICK_LIMITS` and :data:`FULL_LIMITS`.
    """
    from repro.util.workerpool import available_cores, get_pool

    if limits is None:
        limits = QUICK_LIMITS if quick else FULL_LIMITS
    say = progress if progress is not None else (lambda _msg: None)
    compiled_available = have_compiled()
    configs: list[dict[str, Any]] = []
    speedups: dict[str, float] = {}
    if search_workers > 1:
        # Spawn the persistent pool up front so its one-time fork cost
        # never lands inside a timed run.
        get_pool(search_workers).ensure_started()
    for algorithm, heuristic in POLICIES:
        problem = build_problem(heuristic)
        policy_name = f"{algorithm.upper()}/{heuristic}/dynB"
        for node_limit in limits:

            def row(
                engine: str,
                result: SearchResult,
                seconds: float,
                prune: bool = False,
                workers: int | None = None,
            ) -> None:
                entry: dict[str, Any] = {
                    "policy": policy_name,
                    "algorithm": algorithm,
                    "heuristic": heuristic,
                    "bound": "dynB",
                    "node_limit": node_limit,
                    "engine": engine,
                    "prune": prune,
                    "nodes_visited": result.nodes_visited,
                    "leaves_evaluated": result.leaves_evaluated,
                    "seconds_per_decision": seconds,
                    "nodes_per_second": result.nodes_visited / seconds,
                }
                if workers is not None:
                    entry["search_workers"] = workers
                configs.append(entry)

            per_engine: dict[str, tuple[SearchResult, float]] = {}
            for engine in ("fast", "reference"):
                result, seconds = time_search(
                    problem, algorithm, node_limit, engine, repeats=repeats
                )
                per_engine[engine] = (result, seconds)
                row(engine, result, seconds)
            fast, reference = per_engine["fast"], per_engine["reference"]
            if _fingerprint(fast[0]) != _fingerprint(reference[0]):
                raise AssertionError(
                    f"engines disagree on {policy_name} at L={node_limit}: "
                    "fast and reference results must be bit-identical"
                )
            key = f"{policy_name}@L={node_limit}"
            speedups[key] = reference[1] / fast[1]
            say(
                f"{key}: fast {fast[0].nodes_visited / fast[1]:,.0f} n/s, "
                f"reference {reference[0].nodes_visited / reference[1]:,.0f} n/s "
                f"({speedups[key]:.2f}x)"
            )

            # Parallel engine: same bit-identity contract as the serial
            # engines — a parallel speedup over a different answer would
            # be meaningless.
            par_result, par_seconds = time_search(
                problem,
                algorithm,
                node_limit,
                "parallel",
                repeats=repeats,
                search_workers=search_workers,
            )
            row("parallel", par_result, par_seconds, workers=search_workers)
            if _fingerprint(par_result) != _fingerprint(fast[0]):
                raise AssertionError(
                    f"parallel engine disagrees with fast on {policy_name} "
                    f"at L={node_limit} with {search_workers} workers: "
                    "results must be bit-identical"
                )
            par_key = f"{key}:parallel[w={search_workers}]"
            speedups[par_key] = fast[1] / par_seconds
            say(f"{par_key}: {speedups[par_key]:.2f}x over fast")

            # Branch-and-bound ablation: prune=True legitimately changes
            # node accounting (it skips dominated subtrees), so there is
            # no identity assert — the measurement is wall time to decide.
            prune_result, prune_seconds = time_search(
                problem, algorithm, node_limit, "fast", repeats=repeats, prune=True
            )
            row("fast", prune_result, prune_seconds, prune=True)
            prune_key = f"{key}:prune"
            speedups[prune_key] = fast[1] / prune_seconds
            say(
                f"{prune_key}: {speedups[prune_key]:.2f}x over fast "
                f"({prune_result.nodes_visited:,} of "
                f"{fast[0].nodes_visited:,} nodes visited)"
            )

            # Compiled kernel: same bit-identity contract as the serial
            # engines.  Rows and the ":compiled" family exist only when
            # the extension is importable — the ``compiled_available``
            # field below says which kind of report this is.  The ratio
            # is over *reference* (the ISSUE's ≥6x acceptance floor),
            # unlike the over-fast ":parallel"/":prune" families.
            if compiled_available:
                comp_result, comp_seconds = time_search(
                    problem, algorithm, node_limit, "compiled", repeats=repeats
                )
                row("compiled", comp_result, comp_seconds)
                if _fingerprint(comp_result) != _fingerprint(fast[0]):
                    raise AssertionError(
                        f"compiled engine disagrees with fast on {policy_name} "
                        f"at L={node_limit}: results must be bit-identical"
                    )
                comp_key = f"{key}:compiled"
                speedups[comp_key] = reference[1] / comp_seconds
                say(
                    f"{comp_key}: "
                    f"{comp_result.nodes_visited / comp_seconds:,.0f} n/s "
                    f"({speedups[comp_key]:.2f}x over reference)"
                )

    e2e = [time_end_to_end("fast")]
    say(
        f"e2e fast: {e2e[0]['decisions_per_second']:,.1f} decisions/s "
        f"({e2e[0]['decisions']} decisions)"
    )
    if compiled_available:
        e2e.append(time_end_to_end("compiled"))
        say(
            f"e2e compiled: {e2e[-1]['decisions_per_second']:,.1f} decisions/s "
            f"({e2e[-1]['decisions_per_second'] / e2e[0]['decisions_per_second']:.2f}x "
            "over fast)"
        )
    return {
        "schema": SCHEMA,
        "benchmark": "search-hotpath-30-jobs",
        "quick": quick,
        "repeats": repeats,
        "search_workers": search_workers,
        # Parallel speedups only mean anything relative to this: on a
        # single-core builder the parallel rows record an honest slowdown.
        "cores": available_cores(),
        # Honest capability flag (cf. ``cores``): whether the compiled
        # kernel was importable when this report was measured — rows and
        # speedup families for it exist exactly when this is true.
        "compiled_available": compiled_available,
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "machine": platform.machine(),
        "configs": configs,
        "speedups": speedups,
        "e2e": e2e,
        "tolerance": TOLERANCE,
    }


#: The ``--check`` band a fresh smoke run is judged against.  The
#: fast/reference *ratio* is machine-independent (both engines share the
#: interpreter and the cache behaviour), so it gets the tight band; raw
#: nodes/sec moves with the builder's hardware and load, so its floor
#: only catches collapses, not drift.
TOLERANCE: dict[str, float] = {
    # fresh fast/reference speedup >= committed speedup x this
    "min_speedup_frac": 0.65,
    # fresh fast-engine nodes/sec >= committed nodes/sec x this
    "min_nodes_per_second_frac": 0.40,
    # fresh compiled/reference speedup >= committed speedup x this
    # (compared only when both reports were measured with the kernel)
    "min_compiled_speedup_frac": 0.50,
    # fresh e2e decisions/sec >= committed decisions/sec x this, per
    # engine (whole-run replay: noisier than the node loop, wider band)
    "min_e2e_decisions_per_second_frac": 0.35,
}


def check_bench(
    fresh: dict[str, Any], committed: dict[str, Any]
) -> list[str]:
    """Judge a fresh (usually ``--quick``) run against the committed
    report's tolerance band; return human-readable failures (empty ==
    within tolerance).  Only configurations present in both reports are
    compared, so a quick run checks cleanly against a full baseline."""
    tol = committed.get("tolerance", TOLERANCE)
    failures: list[str] = []
    min_speedup = tol["min_speedup_frac"]
    # Compiled rows are compared only when both reports actually measured
    # the kernel; a pure-python smoke against a compiled baseline (or vice
    # versa) skips the family rather than failing spuriously.
    both_compiled = bool(
        fresh.get("compiled_available") and committed.get("compiled_available")
    )
    min_compiled = tol.get(
        "min_compiled_speedup_frac", TOLERANCE["min_compiled_speedup_frac"]
    )
    for key, fresh_ratio in fresh["speedups"].items():
        if key.endswith(":compiled"):
            if not both_compiled:
                continue
            committed_ratio = committed["speedups"].get(key)
            if committed_ratio is None:
                continue
            if fresh_ratio < committed_ratio * min_compiled:
                failures.append(
                    f"{key}: compiled/reference speedup {fresh_ratio:.2f}x "
                    f"below {min_compiled:.0%} of committed "
                    f"{committed_ratio:.2f}x"
                )
            continue
        if ":" in key:  # parallel/prune families move with core count
            continue
        committed_ratio = committed["speedups"].get(key)
        if committed_ratio is None:
            continue
        if fresh_ratio < committed_ratio * min_speedup:
            failures.append(
                f"{key}: fast/reference speedup {fresh_ratio:.2f}x below "
                f"{min_speedup:.0%} of committed {committed_ratio:.2f}x"
            )
    min_e2e = tol.get(
        "min_e2e_decisions_per_second_frac",
        TOLERANCE["min_e2e_decisions_per_second_frac"],
    )
    committed_e2e = {
        (r["policy"], r["engine"]): r for r in committed.get("e2e", [])
    }
    for row in fresh.get("e2e", []):
        if row["engine"] == "compiled" and not both_compiled:
            continue
        base = committed_e2e.get((row["policy"], row["engine"]))
        if base is None:  # v2 baselines have no e2e section
            continue
        if (
            row["decisions_per_second"]
            < base["decisions_per_second"] * min_e2e
        ):
            failures.append(
                f"e2e {row['policy']} [{row['engine']}]: "
                f"{row['decisions_per_second']:,.1f} decisions/s below "
                f"{min_e2e:.0%} of committed "
                f"{base['decisions_per_second']:,.1f}"
            )
    min_nps = tol["min_nodes_per_second_frac"]

    def rowkey(row: dict[str, Any]) -> tuple[Any, ...]:
        return (
            row["policy"],
            row["node_limit"],
            row["engine"],
            row["prune"],
            row.get("search_workers"),
        )

    committed_rows = {rowkey(r): r for r in committed["configs"]}
    for row in fresh["configs"]:
        if row["engine"] != "fast" or row["prune"]:
            continue
        base = committed_rows.get(rowkey(row))
        if base is None:
            continue
        if row["nodes_per_second"] < base["nodes_per_second"] * min_nps:
            failures.append(
                f"{row['policy']}@L={row['node_limit']}: fast engine "
                f"{row['nodes_per_second']:,.0f} nodes/s below {min_nps:.0%} "
                f"of committed {base['nodes_per_second']:,.0f}"
            )
    return failures


def write_bench(
    path: str | Path,
    quick: bool = False,
    repeats: int = 3,
    search_workers: int = 4,
    progress: Callable[[str], None] | None = None,
) -> dict[str, Any]:
    """Run the benchmark and write the JSON report to ``path``."""
    report = run_bench(
        quick=quick,
        repeats=repeats,
        search_workers=search_workers,
        progress=progress,
    )
    out = Path(path)
    # Atomic: a crash mid-write must not leave a torn BENCH_search.json
    # that downstream tooling would try to parse.
    atomic_write_json(out, report, indent=2, sort_keys=True)
    return report


def main() -> int:  # pragma: no cover - thin wrapper for ``python -m``
    write_bench("BENCH_search.json", progress=print)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
