"""Run policies on workloads and collect the paper's measures."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

from repro.metrics.excessive import ExcessiveWaitStats, excessive_wait_stats
from repro.metrics.measures import JobMetrics, compute_metrics
from repro.simulator.engine import Simulation
from repro.simulator.job import Job
from repro.simulator.policy import SchedulingPolicy
from repro.workloads.trace import Workload

#: A policy factory — matrices need a fresh policy object per run because
#: policies carry per-run statistics.
PolicyFactory = Callable[[], SchedulingPolicy]


@dataclass
class PolicyRun:
    """Everything one (workload, policy) simulation produced."""

    workload_name: str
    policy_name: str
    offered_load: float
    metrics: JobMetrics
    avg_queue_length: float
    utilization: float
    jobs: list[Job]  # in-window completed jobs (for class grids, excess)
    policy_stats: dict = field(default_factory=dict)
    wall_seconds: float = 0.0

    def excessive(self, threshold_seconds: float) -> ExcessiveWaitStats:
        """Excessive-wait stats of this run w.r.t. a threshold (seconds)."""
        return excessive_wait_stats(self.jobs, threshold_seconds)


def simulate(workload: Workload, policy: SchedulingPolicy) -> PolicyRun:
    """Simulate ``policy`` on a fresh copy of ``workload`` and summarize.

    The workload's own jobs are never mutated; each call gets fresh job
    objects, so the same :class:`Workload` can back many runs.
    """
    sim = Simulation(
        jobs=workload.fresh_jobs(),
        policy=policy,
        cluster_config=workload.cluster,
        window=workload.window,
    )
    result = sim.run()
    in_window = result.jobs_in_window()
    return PolicyRun(
        workload_name=workload.name,
        policy_name=policy.name,
        offered_load=workload.offered_load(),
        metrics=compute_metrics(in_window),
        avg_queue_length=result.avg_queue_length,
        utilization=result.utilization,
        jobs=in_window,
        policy_stats=result.extra,
        wall_seconds=result.wall_seconds,
    )


def run_matrix(
    workloads: Sequence[Workload],
    policies: Mapping[str, PolicyFactory],
    max_workers: int | None = 1,
    cache=None,
) -> dict[tuple[str, str], PolicyRun]:
    """Simulate every policy on every workload.

    Returns ``{(workload_name, policy_key): PolicyRun}``.  ``policies``
    maps a report key (e.g. ``"FCFS-BF"``) to a factory producing a fresh
    policy instance.  ``max_workers`` above 1 (or 0 for all cores) fans
    the grid across a process pool, and ``cache`` (a
    :class:`~repro.experiments.cache.RunCache`) skips already-computed
    cells; see :mod:`repro.experiments.parallel`.  Any failed run raises
    after the rest of the grid has completed.
    """
    from repro.experiments.parallel import RunSpec, run_grid

    specs = [
        RunSpec(workload=workload, policy=factory, label=key)
        for workload in workloads
        for key, factory in policies.items()
    ]
    outcome = run_grid(specs, max_workers=max_workers, cache=cache)
    outcome.raise_errors()
    return outcome.by_key()
