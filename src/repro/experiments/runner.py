"""Run policies on workloads and collect the paper's measures."""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable, Mapping, Sequence

if TYPE_CHECKING:  # cache.py imports runner; type-only to avoid the cycle
    from repro.experiments.cache import RunCache

from repro.metrics.excessive import ExcessiveWaitStats, excessive_wait_stats
from repro.metrics.measures import JobMetrics, compute_metrics
from repro.simulator import checkpoint as _checkpoint
from repro.simulator.engine import Simulation, SimulationResult
from repro.simulator.job import Job
from repro.simulator.policy import SchedulingPolicy
from repro.util import rng
from repro.workloads.trace import Workload

#: A policy factory — matrices need a fresh policy object per run because
#: policies carry per-run statistics.
PolicyFactory = Callable[[], SchedulingPolicy]


@dataclass
class PolicyRun:
    """Everything one (workload, policy) simulation produced."""

    workload_name: str
    policy_name: str
    offered_load: float
    metrics: JobMetrics
    avg_queue_length: float
    utilization: float
    jobs: list[Job]  # in-window completed jobs (for class grids, excess)
    policy_stats: dict[str, Any] = field(default_factory=dict)
    wall_seconds: float = 0.0

    def excessive(self, threshold_seconds: float) -> ExcessiveWaitStats:
        """Excessive-wait stats of this run w.r.t. a threshold (seconds)."""
        return excessive_wait_stats(self.jobs, threshold_seconds)


def simulate(
    workload: Workload,
    policy: SchedulingPolicy,
    checkpoint: "_checkpoint.CheckpointConfig | None" = None,
) -> PolicyRun:
    """Simulate ``policy`` on a fresh copy of ``workload`` and summarize.

    The workload's own jobs are never mutated; each call gets fresh job
    objects, so the same :class:`Workload` can back many runs.  With a
    ``checkpoint`` config the run snapshots itself periodically and an
    interrupted run can be finished by :func:`resume_run`.
    """
    if checkpoint is not None:
        # Stamp the envelope fields resume_run needs into every snapshot.
        checkpoint.meta.setdefault("workload_name", workload.name)
        checkpoint.meta.setdefault("offered_load", workload.offered_load())
    sim = Simulation(
        jobs=workload.fresh_jobs(),
        policy=policy,
        cluster_config=workload.cluster,
        window=workload.window,
        checkpoint=checkpoint,
    )
    result = sim.run()
    return _package(workload.name, workload.offered_load(), result)


def resume_run(directory: str | Path) -> PolicyRun:
    """Finish an interrupted checkpointed run and summarize it.

    Loads the newest usable snapshot under ``directory`` (corrupt ones are
    skipped), reinstalls its per-run RNG stream, and drives the simulation
    to completion — producing the same :class:`PolicyRun` the original
    :func:`simulate` call would have returned, bit-identical except for
    ``wall_seconds``.
    """
    found = _checkpoint.latest_checkpoint(directory)
    if found is None:
        raise FileNotFoundError(f"no usable checkpoint under {directory}")
    previous = rng.set_run_stream(found.run_stream)
    try:
        result = found.simulation.resume_from(found.state)
    finally:
        rng.set_run_stream(previous)
    return _package(
        str(found.meta.get("workload_name", "resumed")),
        float(found.meta.get("offered_load", 0.0)),
        result,
    )


def _package(
    workload_name: str, offered_load: float, result: SimulationResult
) -> PolicyRun:
    """Fold a raw :class:`SimulationResult` into the run envelope."""
    in_window = result.jobs_in_window()
    return PolicyRun(
        workload_name=workload_name,
        policy_name=result.policy_name,
        offered_load=offered_load,
        metrics=compute_metrics(in_window),
        avg_queue_length=result.avg_queue_length,
        utilization=result.utilization,
        jobs=in_window,
        policy_stats=result.extra,
        wall_seconds=result.wall_seconds,
    )


def run_matrix(
    workloads: Sequence[Workload],
    policies: Mapping[str, PolicyFactory],
    max_workers: int | None = 1,
    cache: "RunCache | None" = None,
) -> dict[tuple[str, str], PolicyRun]:
    """Simulate every policy on every workload.

    Returns ``{(workload_name, policy_key): PolicyRun}``.  ``policies``
    maps a report key (e.g. ``"FCFS-BF"``) to a factory producing a fresh
    policy instance.  ``max_workers`` above 1 (or 0 for all cores) fans
    the grid across a process pool, and ``cache`` (a
    :class:`~repro.experiments.cache.RunCache`) skips already-computed
    cells; see :mod:`repro.experiments.parallel`.  Any failed run raises
    after the rest of the grid has completed.
    """
    from repro.experiments.parallel import RunSpec, run_grid

    specs = [
        RunSpec(workload=workload, policy=factory, label=key)
        for workload in workloads
        for key, factory in policies.items()
    ]
    outcome = run_grid(specs, max_workers=max_workers, cache=cache)
    outcome.raise_errors()
    return outcome.by_key()
