"""Service load generator: the ``BENCH_service.json`` trajectory.

Drives a real :class:`~repro.service.service.DecisionService` — the full
asyncio stack: admission, per-tenant queues, the degradation ladder, the
tenant engines — with a deterministic synthetic multi-tenant workload and
records what the SLO story actually delivers: request throughput, the
p50/p90/p99 latency of complete responses, how many answers were
degraded, and the ladder's mode histogram.

The workload is closed-loop per tenant (each tenant awaits its response
before issuing the next request, so queues never grow without bound) with
tenants running concurrently; job sizes and inter-arrival gaps come from
seeded :class:`~repro.util.rng.RngStream` draws, so two runs issue the
identical request sequence and throughput differences are machine, not
workload.

Following the ``BENCH_search.json`` pattern: ``repro loadgen`` writes the
committed report, ``repro loadgen --check`` judges a fresh (usually
``--quick``) run against the committed report's tolerance band, and the
non-gating ``service-bench`` CI job keeps the numbers honest without
letting a noisy runner block merges.  Latency bands are deliberately
wide — the gating guarantees (every request answered, zero errors,
degradations labeled) are *structural* and checked exactly.
"""

from __future__ import annotations

import asyncio
import platform
import sys
import time
from pathlib import Path
from typing import Any

from repro.core.ckernel import have_compiled
from repro.core.scheduler import make_policy
from repro.service.api import DecisionRequest, JobSpec, TenantSLO
from repro.service.service import DecisionService, ServiceConfig
from repro.simulator.cluster import ClusterConfig, JobLimits
from repro.simulator.policy import SchedulingPolicy
from repro.util.atomio import atomic_write_json
from repro.util.rng import RngStream
from repro.util.timeunits import HOUR

#: Report format version (bump on incompatible layout changes).
SCHEMA = "repro-bench-service/v1"

#: Full-run shape: enough requests for stable percentiles.
FULL_TENANTS = 4
FULL_REQUESTS = 150
#: ``--quick`` keeps the CI smoke in seconds.
QUICK_TENANTS = 2
QUICK_REQUESTS = 40

#: The benchmark machine: a mid-size partition so queues actually form.
BENCH_NODES = 64
BENCH_NODE_LIMIT = 500


def _bench_cluster() -> ClusterConfig:
    return ClusterConfig(
        nodes=BENCH_NODES,
        limits=JobLimits(max_nodes=BENCH_NODES, max_runtime=24 * HOUR),
    )


def _bench_policy(tenant_id: str) -> SchedulingPolicy:
    return make_policy("dds", "lxf", node_limit=BENCH_NODE_LIMIT)


async def _drive_tenant(
    service: DecisionService,
    tenant_id: str,
    requests: int,
    seed: int,
    responses: list[Any],
) -> None:
    """Issue ``requests`` sequential decision requests for one tenant."""
    stream = RngStream(seed, f"loadgen/{tenant_id}")
    now = 0.0
    for i in range(requests):
        now += float(stream.uniform(30.0, 600.0))
        arrivals = tuple(
            JobSpec(
                job_id=i * 4 + k,
                nodes=int(stream.integers(1, BENCH_NODES // 2 + 1)),
                runtime=float(stream.uniform(300.0, 4 * HOUR)),
            )
            for k in range(int(stream.integers(1, 4)))
        )
        request = DecisionRequest(tenant=tenant_id, now=now, arrivals=arrivals)
        responses.append(await service.submit(request))


def _percentile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank percentile of an ascending list (0 for empty input)."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1, round(q * (len(sorted_values) - 1))))
    return sorted_values[rank]


async def _run(
    tenants: int, requests: int, seed: int, deadline: float
) -> dict[str, Any]:
    config = ServiceConfig(
        default_slo=TenantSLO(deadline_seconds=deadline, queue_limit=16)
    )
    service = DecisionService(
        _bench_policy, config=config, cluster_config=_bench_cluster()
    )
    tenant_ids = [f"tenant-{i:02d}" for i in range(tenants)]
    for tenant_id in tenant_ids:
        service.register_tenant(tenant_id)
    responses: list[Any] = []
    wall_start = time.perf_counter()
    async with service:
        await asyncio.gather(
            *(
                _drive_tenant(service, tenant_id, requests, seed, responses)
                for tenant_id in tenant_ids
            )
        )
    wall = time.perf_counter() - wall_start

    latencies = sorted(r.latency_seconds for r in responses)
    modes: dict[str, int] = {}
    decisions = 0
    for response in responses:
        for decision in response.decisions:
            decisions += 1
            modes[decision.mode] = modes.get(decision.mode, 0) + 1
    statuses = {status: 0 for status in ("ok", "shed", "rejected", "error")}
    for response in responses:
        statuses[response.status] += 1
    total = len(responses)
    return {
        "tenants": tenants,
        "requests_per_tenant": requests,
        "seed": seed,
        "deadline_seconds": deadline,
        "total_requests": total,
        "answered": total,  # submit() always answers; recorded for --check
        "statuses": statuses,
        "decisions": decisions,
        "degraded_responses": sum(1 for r in responses if r.degraded),
        "deadline_exceeded": sum(1 for r in responses if r.deadline_exceeded),
        "modes": modes,
        "wall_seconds": wall,
        "throughput_rps": total / wall if wall > 0 else 0.0,
        "latency_seconds": {
            "p50": _percentile(latencies, 0.50),
            "p90": _percentile(latencies, 0.90),
            "p99": _percentile(latencies, 0.99),
            "max": latencies[-1] if latencies else 0.0,
        },
    }


def run_loadgen(
    quick: bool = False,
    tenants: int | None = None,
    requests: int | None = None,
    seed: int = 2005,
    deadline: float = 2.0,
) -> dict[str, Any]:
    """Run the service benchmark and build the report dict."""
    from repro.util.workerpool import available_cores

    if tenants is None:
        tenants = QUICK_TENANTS if quick else FULL_TENANTS
    if requests is None:
        requests = QUICK_REQUESTS if quick else FULL_REQUESTS
    results = asyncio.run(_run(tenants, requests, seed, deadline))
    return {
        "schema": SCHEMA,
        "benchmark": "decision-service-closed-loop",
        "quick": quick,
        "policy": f"DDS/lxf/dynB@L={BENCH_NODE_LIMIT}",
        "cluster_nodes": BENCH_NODES,
        "cores": available_cores(),
        "compiled_available": have_compiled(),
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "machine": platform.machine(),
        "results": results,
        "tolerance": TOLERANCE,
    }


#: The ``--check`` band.  Latency and throughput move with the builder,
#: so their bands are wide; the structural service guarantees (every
#: request answered, zero transport errors) are exact.
TOLERANCE: dict[str, float] = {
    # fresh throughput >= committed throughput x this
    "min_throughput_frac": 0.20,
    # fresh p99 latency <= committed p99 x this
    "max_p99_ratio": 6.0,
    # fraction of responses allowed to miss their deadline outright
    "max_deadline_exceeded_frac": 0.10,
}


def check_loadgen(fresh: dict[str, Any], committed: dict[str, Any]) -> list[str]:
    """Judge a fresh run against the committed report's tolerance band.

    Returns human-readable failures (empty == within tolerance).  The
    structural checks are absolute; the performance checks compare only
    when both reports ran the same benchmark shape.
    """
    tol = committed.get("tolerance", TOLERANCE)
    failures: list[str] = []
    results = fresh["results"]
    statuses = results["statuses"]

    if results["answered"] != results["total_requests"]:
        failures.append(
            f"{results['answered']} of {results['total_requests']} requests "
            "answered — the service must answer every accepted request"
        )
    if statuses.get("error", 0):
        failures.append(
            f"{statuses['error']} requests errored — a fault-free benchmark "
            "run must have zero transport errors"
        )
    if statuses.get("rejected", 0):
        failures.append(
            f"{statuses['rejected']} requests rejected — the generator only "
            "issues contract-valid requests"
        )
    max_exceeded = tol.get(
        "max_deadline_exceeded_frac", TOLERANCE["max_deadline_exceeded_frac"]
    )
    if results["total_requests"] > 0:
        exceeded_frac = results["deadline_exceeded"] / results["total_requests"]
        if exceeded_frac > max_exceeded:
            failures.append(
                f"{exceeded_frac:.1%} of responses exceeded their deadline "
                f"(band allows {max_exceeded:.0%})"
            )

    base = committed["results"]
    min_tp = tol.get("min_throughput_frac", TOLERANCE["min_throughput_frac"])
    if results["throughput_rps"] < base["throughput_rps"] * min_tp:
        failures.append(
            f"throughput {results['throughput_rps']:,.1f} req/s below "
            f"{min_tp:.0%} of committed {base['throughput_rps']:,.1f}"
        )
    max_p99 = tol.get("max_p99_ratio", TOLERANCE["max_p99_ratio"])
    fresh_p99 = results["latency_seconds"]["p99"]
    committed_p99 = base["latency_seconds"]["p99"]
    if committed_p99 > 0 and fresh_p99 > committed_p99 * max_p99:
        failures.append(
            f"p99 latency {fresh_p99 * 1000:.1f}ms above {max_p99:.0f}x "
            f"committed {committed_p99 * 1000:.1f}ms"
        )
    return failures


def write_loadgen(path: str | Path, **kwargs: Any) -> dict[str, Any]:
    """Run the benchmark and write the JSON report to ``path`` atomically."""
    report = run_loadgen(**kwargs)
    atomic_write_json(Path(path), report, indent=2, sort_keys=True)
    return report


def main() -> int:  # pragma: no cover - thin wrapper for ``python -m``
    report = write_loadgen("BENCH_service.json")
    results = report["results"]
    print(
        f"{results['total_requests']} requests, "
        f"{results['throughput_rps']:,.1f} req/s, "
        f"p50 {results['latency_seconds']['p50'] * 1000:.1f}ms, "
        f"p99 {results['latency_seconds']['p99'] * 1000:.1f}ms"
    )
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
