"""Bench-scale vs. paper-scale experiment settings.

A full paper-scale month is 2-4k jobs and search budgets up to L = 100K
node visits per decision — hours of CPU per policy in pure Python.  The
benchmarks therefore default to *reduced-scale* months: the same
distributions, fewer jobs, and search budgets reduced by the same factor,
which keeps the discrepancy-search regime intact (the budget still covers a
vanishing fraction of the n! tree; see DESIGN.md §4.3).

Set ``REPRO_FULL_SCALE=1`` to run the paper's exact sizes, or
``REPRO_SCALE=<float>`` / ``REPRO_L_FACTOR=<float>`` for anything between.
"""

from __future__ import annotations

import os
from dataclasses import dataclass


@dataclass(frozen=True)
class ExperimentScale:
    """Scaling knobs applied uniformly across the experiment suite.

    ``job_scale`` multiplies monthly job counts; ``node_limit_factor``
    multiplies the paper's search budgets (L).  ``seed`` is the master
    workload seed.
    """

    job_scale: float = 0.15
    node_limit_factor: float = 0.1
    seed: int = 2005

    def L(self, paper_value: int) -> int:
        """Scale one of the paper's node limits (1K, 2K, 4K, 8K, 100K)."""
        return max(16, round(paper_value * self.node_limit_factor))


#: The paper's own sizes.
FULL_SCALE = ExperimentScale(job_scale=1.0, node_limit_factor=1.0)

#: Default reduced size for the benchmark suite.
BENCH_SCALE = ExperimentScale()


def current_scale() -> ExperimentScale:
    """Resolve the active scale from the environment."""
    if os.environ.get("REPRO_FULL_SCALE", "").strip() in {"1", "true", "yes"}:
        return FULL_SCALE
    scale = BENCH_SCALE
    job_scale = os.environ.get("REPRO_SCALE")
    l_factor = os.environ.get("REPRO_L_FACTOR")
    seed = os.environ.get("REPRO_SEED")
    return ExperimentScale(
        job_scale=float(job_scale) if job_scale else scale.job_scale,
        node_limit_factor=float(l_factor) if l_factor else scale.node_limit_factor,
        seed=int(seed) if seed else scale.seed,
    )
