"""Atomic file writes: no reader ever sees a truncated artifact.

Every durable artifact this project produces — run-cache entries,
``BENCH_search.json``, reproduction reports, simulation checkpoints — is
written through this module so an interrupt (SIGKILL, OOM, power loss)
can never leave a half-written file behind.  The recipe is the classic
one:

1. write the full content to a temporary file *in the target directory*
   (same filesystem, so the final rename is atomic);
2. flush and ``fsync`` the temporary file, so the bytes are durable
   before they become visible;
3. ``os.replace`` onto the destination — atomic on POSIX and Windows;
4. best-effort ``fsync`` of the containing directory, so the rename
   itself survives a crash.

Readers therefore observe either the previous complete content or the
new complete content, never a mixture.  Corruption that slips past this
(disk faults, foreign writers) is the run cache's checksum layer's job
(:mod:`repro.experiments.cache`) — the two defenses compose.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any


def fsync_directory(directory: Path) -> None:
    """Best-effort fsync of a directory (durability of renames within it).

    Some platforms and filesystems reject opening directories or syncing
    them; losing *durability* there is acceptable, losing *atomicity* is
    not — and atomicity comes from ``os.replace``, not from this call.
    """
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-dependent
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform-dependent
        pass
    finally:
        os.close(fd)


def atomic_write_bytes(path: str | Path, data: bytes) -> Path:
    """Atomically replace ``path`` with ``data``; returns the path.

    Parent directories are created as needed.  On any failure the
    temporary file is removed and the destination is left untouched.
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        prefix=f".{target.name}.", suffix=".tmp", dir=target.parent
    )
    tmp = Path(tmp_name)
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, target)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise
    fsync_directory(target.parent)
    return target


def atomic_write_text(
    path: str | Path, text: str, encoding: str = "utf-8"
) -> Path:
    """Atomically replace ``path`` with ``text`` (see :func:`atomic_write_bytes`)."""
    return atomic_write_bytes(path, text.encode(encoding))


def atomic_write_json(path: str | Path, obj: Any, **dumps_kwargs: Any) -> Path:
    """Atomically write ``obj`` as JSON with a trailing newline."""
    return atomic_write_text(path, json.dumps(obj, **dumps_kwargs) + "\n")
