"""Time-unit constants and conversion helpers.

All simulation times in this library are expressed in **seconds** as plain
floats (or ints).  These helpers exist so that calling code can say
``hours(12)`` instead of sprinkling ``12 * 3600`` literals around, and so that
reports can render durations in the units the paper uses (hours).
"""

from __future__ import annotations

SECOND: float = 1.0
MINUTE: float = 60.0
HOUR: float = 3600.0
DAY: float = 24 * HOUR
WEEK: float = 7 * DAY


def hours(x: float) -> float:
    """Convert a duration in hours to seconds."""
    return x * HOUR


def minutes(x: float) -> float:
    """Convert a duration in minutes to seconds."""
    return x * MINUTE


def days(x: float) -> float:
    """Convert a duration in days to seconds."""
    return x * DAY


def to_hours(seconds: float) -> float:
    """Convert a duration in seconds to hours."""
    return seconds / HOUR


def to_minutes(seconds: float) -> float:
    """Convert a duration in seconds to minutes."""
    return seconds / MINUTE


def fmt_duration(seconds: float) -> str:
    """Render a duration in seconds as a compact human-readable string.

    >>> fmt_duration(90)
    '1m30s'
    >>> fmt_duration(3600 * 5.5)
    '5h30m'
    """
    if seconds < 0:
        return "-" + fmt_duration(-seconds)
    s = int(round(seconds))
    d, s = divmod(s, int(DAY))
    h, s = divmod(s, int(HOUR))
    m, s = divmod(s, int(MINUTE))
    parts: list[str] = []
    if d:
        parts.append(f"{d}d")
    if h:
        parts.append(f"{h}h")
    if m:
        parts.append(f"{m}m")
    if s or not parts:
        parts.append(f"{s}s")
    return "".join(parts[:2])
