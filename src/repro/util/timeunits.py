"""Time-unit constants, conversion helpers, and float-time comparisons.

All simulation times in this library are expressed in **seconds** as plain
floats (or ints).  These helpers exist so that calling code can say
``hours(12)`` instead of sprinkling ``12 * 3600`` literals around, and so that
reports can render durations in the units the paper uses (hours).

The module is also the home of the sanctioned float-time comparison
helpers (:func:`time_eq`, :func:`time_lt`, :func:`time_le`).  Simulation
times are sums of float arithmetic, so raw ``==``/``!=`` between them is a
determinism hazard — two logically simultaneous events can differ in the
last bit and silently take different branches.  ``simlint`` (rule SIM003)
flags raw equality between time-like values; these helpers are the fix.
"""

from __future__ import annotations

SECOND: float = 1.0
MINUTE: float = 60.0
HOUR: float = 3600.0
DAY: float = 24 * HOUR
WEEK: float = 7 * DAY

#: Simultaneity window for float simulation times, matching the event
#: queue's batching tolerance: times within TIME_EPS are one instant.
TIME_EPS: float = 1e-9


def time_eq(a: float, b: float, eps: float = TIME_EPS) -> bool:
    """Whether two simulation times denote the same instant (within eps)."""
    return abs(a - b) <= eps


def time_lt(a: float, b: float, eps: float = TIME_EPS) -> bool:
    """Whether ``a`` is strictly before ``b`` (by more than eps)."""
    return a < b - eps


def time_le(a: float, b: float, eps: float = TIME_EPS) -> bool:
    """Whether ``a`` is before or at the same instant as ``b``."""
    return a <= b + eps


def hours(x: float) -> float:
    """Convert a duration in hours to seconds."""
    return x * HOUR


def minutes(x: float) -> float:
    """Convert a duration in minutes to seconds."""
    return x * MINUTE


def days(x: float) -> float:
    """Convert a duration in days to seconds."""
    return x * DAY


def to_hours(seconds: float) -> float:
    """Convert a duration in seconds to hours."""
    return seconds / HOUR


def to_minutes(seconds: float) -> float:
    """Convert a duration in seconds to minutes."""
    return seconds / MINUTE


def fmt_duration(seconds: float) -> str:
    """Render a duration in seconds as a compact human-readable string.

    >>> fmt_duration(90)
    '1m30s'
    >>> fmt_duration(3600 * 5.5)
    '5h30m'
    """
    if seconds < 0:
        return "-" + fmt_duration(-seconds)
    s = int(round(seconds))
    d, s = divmod(s, int(DAY))
    h, s = divmod(s, int(HOUR))
    m, s = divmod(s, int(MINUTE))
    parts: list[str] = []
    if d:
        parts.append(f"{d}d")
    if h:
        parts.append(f"{h}h")
    if m:
        parts.append(f"{m}m")
    if s or not parts:
        parts.append(f"{s}s")
    return "".join(parts[:2])
