"""Deterministic, plan-driven fault injection for the robustness layer.

Production failures — a search worker segfaulting mid-shard, a run-cache
entry truncated by a power loss, a simulation process OOM-killed a week
into a month — are rare, uncorrelated, and miserable to reproduce.  This
module makes them *first-class, replayable inputs*: a :class:`FaultPlan`
names the injection sites, their firing probabilities, and a seed; every
probabilistic decision draws from a per-site :class:`~repro.util.rng
.RngStream`, so the same plan replays the exact same fault sequence,
byte for byte, on every run.

Injection sites (all consulted on the *leader/driver* side, so a plan's
draws never depend on worker scheduling):

========================  ====================================================
site                      what firing means
========================  ====================================================
``worker.spawn``          the worker pool fails to start its executor
``worker.crash``          a live pool worker is killed abruptly (the real
                          ``BrokenProcessPool`` path, not a simulation of it)
``worker.result``         result transport from a pool worker fails
``cache.read``            a run-cache read observes torn/corrupt content
``cache.write``           a run-cache write persists corrupted bytes
``engine.step``           the simulation engine dies at a decision point
``service.request``       decision-service request intake fails transiently
                          (retried with backoff before the tenant loop
                          answers; see ``docs/service.md``)
``service.decide``        the service's primary decision path fails for one
                          request (the degradation ladder must still answer)
``service.snapshot``      a tenant-state snapshot persists corrupted bytes
                          (recovery must fall back to an older snapshot)
========================  ====================================================

Enable via the ``REPRO_FAULTS`` environment variable or
:func:`set_fault_plan` / :func:`injected_faults` from code.  The plan
grammar is comma- or whitespace-separated tokens::

    REPRO_FAULTS="seed=2005,worker.crash=0.4,cache.write=1.0/3,engine.step=1@120"

- ``seed=N`` seeds every site's stream (default 0);
- ``site=rate`` fires with probability ``rate`` per consultation;
- an optional ``/limit`` caps the total number of firings at a site;
- an optional ``@after`` suppresses the first ``after`` consultations
  (e.g. ``engine.step=1@120`` crashes exactly at the 121st decision).

The injected failures are indistinguishable from real ones to the code
under test — the fault layer's contract (see ``docs/robustness.md``) is
that results stay **bit-identical** to a fault-free run as long as every
fault is of a recoverable kind.
"""

from __future__ import annotations

import os
from collections import Counter
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, Mapping

from repro.util.rng import RngStream

#: Every valid injection site (typo guard for plans).
SITES: tuple[str, ...] = (
    "worker.spawn",
    "worker.crash",
    "worker.result",
    "cache.read",
    "cache.write",
    "engine.step",
    "service.request",
    "service.decide",
    "service.snapshot",
)


class InjectedFault(RuntimeError):
    """An artificial failure raised by the injector at an injection site."""

    def __init__(self, site: str, ordinal: int) -> None:
        super().__init__(f"injected fault at {site} (firing #{ordinal})")
        self.site = site
        self.ordinal = ordinal


@dataclass(frozen=True)
class SiteSpec:
    """Firing behaviour of one site: probability, cap, and warm-up grace."""

    rate: float
    limit: int | None = None
    after: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"fault rate must be in [0, 1], got {self.rate}")
        if self.limit is not None and self.limit < 0:
            raise ValueError(f"fault limit must be >= 0, got {self.limit}")
        if self.after < 0:
            raise ValueError(f"fault 'after' must be >= 0, got {self.after}")


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, declarative description of which faults fire where."""

    seed: int = 0
    sites: Mapping[str, SiteSpec] = field(default_factory=dict)

    def __post_init__(self) -> None:
        unknown = sorted(set(self.sites) - set(SITES))
        if unknown:
            raise ValueError(
                f"unknown fault sites {unknown}; choose from {list(SITES)}"
            )

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Parse the ``REPRO_FAULTS`` grammar (see module docstring)."""
        seed = 0
        sites: dict[str, SiteSpec] = {}
        for token in text.replace(",", " ").split():
            name, sep, value = token.partition("=")
            if not sep:
                raise ValueError(f"cannot parse fault token {token!r}")
            name = name.strip()
            if name == "seed":
                seed = int(value)
                continue
            after = 0
            limit: int | None = None
            if "@" in value:
                value, _, after_text = value.partition("@")
                after = int(after_text)
            if "/" in value:
                value, _, limit_text = value.partition("/")
                limit = int(limit_text)
            sites[name] = SiteSpec(rate=float(value), limit=limit, after=after)
        return cls(seed=seed, sites=sites)

    def describe(self) -> str:
        """The plan back in its parseable grammar (stable ordering)."""
        parts = [f"seed={self.seed}"]
        for name in sorted(self.sites):
            spec = self.sites[name]
            token = f"{name}={spec.rate:g}"
            if spec.limit is not None:
                token += f"/{spec.limit}"
            if spec.after:
                token += f"@{spec.after}"
            parts.append(token)
        return ",".join(parts)


class FaultInjector:
    """Replays a :class:`FaultPlan`; every decision is a seeded stream draw.

    Each site owns an independent child stream (``faults/<site>``), so
    consultations at one site never perturb the draw sequence of another
    — adding a new site to a plan cannot change when existing sites fire.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._streams: dict[str, RngStream] = {}
        #: Consultations per site (fired or not), for diagnostics/tests.
        self.checked: Counter[str] = Counter()
        #: Firings per site.
        self.fired: Counter[str] = Counter()

    def should_fire(self, site: str) -> bool:
        """Record one consultation of ``site``; ``True`` if the fault fires."""
        spec = self.plan.sites.get(site)
        self.checked[site] += 1
        if spec is None or spec.rate <= 0.0:
            return False
        if self.checked[site] <= spec.after:
            return False
        if spec.limit is not None and self.fired[site] >= spec.limit:
            return False
        if spec.rate < 1.0:
            stream = self._streams.get(site)
            if stream is None:
                stream = RngStream(self.plan.seed, f"faults/{site}")
                self._streams[site] = stream
            if float(stream.uniform()) >= spec.rate:
                return False
        self.fired[site] += 1
        return True

    def fire(self, site: str) -> None:
        """Raise :class:`InjectedFault` if the plan says ``site`` fails now."""
        if self.should_fire(site):
            raise InjectedFault(site, self.fired[site])


# ----------------------------------------------------------------------
# Process-wide active injector (mirrors repro.util.sanitize's tri-state).
# ----------------------------------------------------------------------
#: Explicit override: a plan, explicitly disabled (None after set), or
#: "defer to the environment" (the _UNSET sentinel).
_UNSET = object()
_override: object = _UNSET
#: Cached injector built from REPRO_FAULTS; invalidated by set_fault_plan.
_env_injector: FaultInjector | None = None
_env_read = False


def plan_from_env() -> FaultPlan | None:
    """The plan described by ``REPRO_FAULTS``, or ``None`` when unset."""
    text = os.environ.get("REPRO_FAULTS", "").strip()
    if not text:
        return None
    return FaultPlan.parse(text)


def set_fault_plan(plan: FaultPlan | None) -> FaultInjector | None:
    """Install ``plan`` as the active fault plan (``None`` disables faults).

    Returns the new active injector.  Use :func:`reset_faults` to go back
    to deferring to ``REPRO_FAULTS``.
    """
    global _override, _env_injector, _env_read
    _override = FaultInjector(plan) if plan is not None else None
    _env_injector = None
    _env_read = False
    return _override if isinstance(_override, FaultInjector) else None


def reset_faults() -> None:
    """Forget any override *and* the cached env injector (re-read next use)."""
    global _override, _env_injector, _env_read
    _override = _UNSET
    _env_injector = None
    _env_read = False


def active_injector() -> FaultInjector | None:
    """The injector in effect, or ``None`` when fault injection is off."""
    global _env_injector, _env_read
    if _override is not _UNSET:
        return _override if isinstance(_override, FaultInjector) else None
    if not _env_read:
        plan = plan_from_env()
        _env_injector = FaultInjector(plan) if plan is not None else None
        _env_read = True
    return _env_injector


@contextmanager
def injected_faults(plan: FaultPlan) -> Iterator[FaultInjector]:
    """Scope a fault plan to a ``with`` block (tests, targeted chaos)."""
    global _override
    previous = _override
    injector = FaultInjector(plan)
    _override = injector
    try:
        yield injector
    finally:
        _override = previous


@contextmanager
def faults_suppressed() -> Iterator[None]:
    """Scope with fault injection disabled (exact-accounting test paths)."""
    global _override
    previous = _override
    _override = None
    try:
        yield
    finally:
        _override = previous


def should_fire(site: str) -> bool:
    """Module-level convenience: consult the active injector, if any."""
    injector = active_injector()
    return injector is not None and injector.should_fire(site)


def fire(site: str) -> None:
    """Raise :class:`InjectedFault` if the active plan fails ``site`` now."""
    injector = active_injector()
    if injector is not None:
        injector.fire(site)
