"""Small argument-validation helpers used across the library.

Raising early with a clear message beats letting a bad node count surface as
a confusing profile inconsistency three layers down.
"""

from __future__ import annotations

from typing import Any


def check_positive(name: str, value: float) -> None:
    """Raise ``ValueError`` unless ``value > 0``."""
    if not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")


def check_non_negative(name: str, value: float) -> None:
    """Raise ``ValueError`` unless ``value >= 0``."""
    if not value >= 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")


def check_in_range(name: str, value: float, lo: float, hi: float) -> None:
    """Raise ``ValueError`` unless ``lo <= value <= hi``."""
    if not (lo <= value <= hi):
        raise ValueError(f"{name} must be in [{lo}, {hi}], got {value!r}")


def check_type(name: str, value: Any, expected: type | tuple[type, ...]) -> None:
    """Raise ``TypeError`` unless ``value`` is an instance of ``expected``."""
    if not isinstance(value, expected):
        exp = (
            expected.__name__
            if isinstance(expected, type)
            else "/".join(t.__name__ for t in expected)
        )
        raise TypeError(f"{name} must be {exp}, got {type(value).__name__}")
