"""Shared utilities: time units, validation helpers, seeded RNG streams."""

from repro.util.timeunits import (
    SECOND,
    MINUTE,
    HOUR,
    DAY,
    WEEK,
    hours,
    minutes,
    days,
    to_hours,
    to_minutes,
    fmt_duration,
)
from repro.util.validation import (
    check_positive,
    check_non_negative,
    check_in_range,
    check_type,
)
from repro.util.rng import RngStream, spawn_streams

__all__ = [
    "SECOND",
    "MINUTE",
    "HOUR",
    "DAY",
    "WEEK",
    "hours",
    "minutes",
    "days",
    "to_hours",
    "to_minutes",
    "fmt_duration",
    "check_positive",
    "check_non_negative",
    "check_in_range",
    "check_type",
    "RngStream",
    "spawn_streams",
]
