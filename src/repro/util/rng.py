"""Deterministic random-number streams for workload generation.

Every stochastic component of the library draws from a named
:class:`RngStream` derived from one master seed, so a whole experiment matrix
is reproducible from a single integer, and adding a new consumer of
randomness does not perturb existing streams.
"""

from __future__ import annotations

import hashlib
from typing import Any, Sequence

import numpy as np

#: Shape argument accepted by the draw methods (``None`` = one scalar).
Size = int | tuple[int, ...] | None


def _derive_seed(master_seed: int, name: str) -> int:
    """Derive a child seed from a master seed and a stream name.

    Uses SHA-256 so streams are statistically independent and stable across
    Python versions (``hash()`` is salted per process and unusable here).
    """
    digest = hashlib.sha256(f"{master_seed}:{name}".encode()).digest()
    return int.from_bytes(digest[:8], "little")


class RngStream:
    """A named, seeded wrapper over :class:`numpy.random.Generator`.

    Parameters
    ----------
    master_seed:
        The experiment-level seed.
    name:
        A stable identifier for this consumer, e.g. ``"arrivals:2003-07"``.
    """

    def __init__(self, master_seed: int, name: str) -> None:
        self.master_seed = int(master_seed)
        self.name = name
        self.generator = np.random.default_rng(_derive_seed(self.master_seed, name))

    def child(self, suffix: str) -> "RngStream":
        """Create a sub-stream with a derived name."""
        return RngStream(self.master_seed, f"{self.name}/{suffix}")

    # Thin pass-throughs for the draws the library needs.  Keeping them
    # explicit (rather than __getattr__) documents the full random surface.
    # Returns are ``Any`` because numpy's draws are scalar-or-array
    # depending on ``size``; callers pin the shape at the call site.

    def uniform(
        self, low: float = 0.0, high: float = 1.0, size: "Size" = None
    ) -> Any:
        return self.generator.uniform(low, high, size)

    def exponential(self, scale: float, size: "Size" = None) -> Any:
        return self.generator.exponential(scale, size)

    def lognormal(self, mean: float, sigma: float, size: "Size" = None) -> Any:
        return self.generator.lognormal(mean, sigma, size)

    def choice(
        self,
        a: "Sequence[Any] | np.ndarray[Any, Any] | int",
        size: "Size" = None,
        p: "Sequence[float] | None" = None,
        replace: bool = True,
    ) -> Any:
        return self.generator.choice(a, size=size, p=p, replace=replace)  # type: ignore[arg-type]

    def integers(self, low: int, high: int, size: "Size" = None) -> Any:
        return self.generator.integers(low, high, size)

    def shuffle(self, x: "np.ndarray[Any, Any] | list[Any]") -> None:
        self.generator.shuffle(x)


def spawn_streams(master_seed: int, names: list[str]) -> dict[str, RngStream]:
    """Create one :class:`RngStream` per name from a single master seed."""
    return {name: RngStream(master_seed, name) for name in names}


# ----------------------------------------------------------------------
# Per-run stream registry
# ----------------------------------------------------------------------
# Experiment executors derive one stream per simulation run instead of
# seeding the process-global ``random``/``np.random`` state (simlint rule
# SIM002 forbids the latter): global seeding couples unrelated consumers
# through hidden state and silently breaks when a library call consumes
# draws in between.  Any future stochastic component of a *run* (random
# tie-breaks, noise injection, ...) must draw from ``run_stream()``.

_run_stream: RngStream | None = None


def derive_run_stream(seed: int, name: str = "run") -> RngStream:
    """A named stream for one simulation run, derived from a content seed."""
    return RngStream(seed, name)


def set_run_stream(stream: RngStream | None) -> RngStream | None:
    """Install the active per-run stream; returns the previous one."""
    global _run_stream
    previous = _run_stream
    _run_stream = stream
    return previous


def run_stream() -> RngStream | None:
    """The stream of the run currently executing, if any."""
    return _run_stream
