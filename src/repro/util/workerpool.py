"""Persistent, supervised process worker pool shared across decisions.

The intra-decision parallel search engine
(:mod:`repro.core.parallel_search`) fans each decision's shards across
worker processes.  Decisions are frequent (thousands per simulated month)
and individually small (milliseconds), so paying a fork + warm-up per
decision would drown the work itself.  This module therefore keeps **one
pool per worker count alive for the whole process**:

- :func:`get_pool` returns the registered :class:`WorkerPool` for a size,
  creating the object lazily; the underlying executor is spawned on first
  use, or eagerly via :meth:`WorkerPool.ensure_started` — which the
  simulation engine's ``on_simulation_begin`` lifecycle hook calls so the
  spawn cost lands at simulation start, not inside the first decision;
- pools stay warm across decisions *and* across simulations, and are torn
  down at interpreter exit (or explicitly via :func:`shutdown_all`, which
  tests use);
- every pool carries a small shared-memory float *blackboard*, created
  before the workers spawn and inherited by all of them, used by the
  parallel search's opt-in incumbent broadcast (``share_incumbent``).

Supervision (the fault-tolerance layer, see ``docs/robustness.md``): a
pool that breaks — a worker dies mid-task (``BrokenProcessPool``), the
warm-up exceeds its deadline, the executor cannot spawn — is marked
broken, and callers may :meth:`~WorkerPool.respawn` it a bounded number
of times (``REPRO_POOL_RESPAWNS``).  Once the respawn budget is spent the
pool is permanently failed and callers run inline instead — nothing here
ever raises for "no parallelism available".  Fault injection
(:mod:`repro.util.faults`) hooks the spawn path (``worker.spawn``) and
can kill a live worker for real (:meth:`~WorkerPool.crash_worker`), so
the whole recovery ladder is exercised deterministically in tests and in
the chaos CI job.
"""

from __future__ import annotations

import atexit
import multiprocessing as mp
import os
import time
from concurrent.futures import Future, ProcessPoolExecutor
from typing import Any, Callable, TypeVar

from repro.util import faults

_T = TypeVar("_T")

#: Float slots in each pool's shared blackboard.  The parallel search uses
#: slot 0 as a generation stamp, slot 1 as a validity flag, and the rest as
#: score payload; other consumers may claim the same slots only between
#: generations.
BLACKBOARD_SLOTS = 8

#: Default warm-up deadline (seconds); override per pool or via
#: ``REPRO_POOL_WARMUP_TIMEOUT``.
DEFAULT_WARMUP_TIMEOUT = 60.0

#: Default number of times a broken pool may be respawned before it is
#: permanently failed; override per pool or via ``REPRO_POOL_RESPAWNS``.
DEFAULT_MAX_RESPAWNS = 2

#: Default per-task result deadline (seconds) used by supervised callers;
#: override via ``REPRO_TASK_DEADLINE`` (0 or negative disables it).
DEFAULT_TASK_DEADLINE = 300.0

#: Set in each worker process by the executor initializer.
_worker_blackboard: Any = None


def _env_float(name: str, default: float) -> float:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    try:
        return float(raw)
    except ValueError:
        return default


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    try:
        return int(raw)
    except ValueError:
        return default


def warmup_timeout() -> float:
    """The configured pool warm-up deadline in seconds."""
    return _env_float("REPRO_POOL_WARMUP_TIMEOUT", DEFAULT_WARMUP_TIMEOUT)


def task_deadline() -> float | None:
    """Per-task result deadline for supervised submissions (``None`` = off)."""
    value = _env_float("REPRO_TASK_DEADLINE", DEFAULT_TASK_DEADLINE)
    return value if value > 0 else None


def retry_backoff(attempt: int, base: float = 0.05, cap: float = 0.5) -> float:
    """Deterministic exponential backoff delay (seconds) for retry ``attempt``.

    Purely a pacing aid between pool respawns — it cannot affect results,
    only wall time, so there is no jitter to keep replay exact.
    """
    return min(base * (2.0 ** max(0, attempt)), cap)


def _init_worker(blackboard: Any) -> None:
    """Executor initializer: record the inherited blackboard handle."""
    global _worker_blackboard
    _worker_blackboard = blackboard


def worker_blackboard() -> Any:
    """The pool's shared blackboard when inside a worker, else ``None``."""
    return _worker_blackboard


def _warm(index: int, naptime: float) -> int:
    """No-op warm-up task; the sleep keeps early workers busy so the
    executor actually spawns one process per outstanding task."""
    if naptime > 0.0:
        time.sleep(naptime)
    return index


def _abrupt_exit(code: int) -> None:
    """Kill the calling worker without cleanup (crash_worker payload)."""
    os._exit(code)


def available_cores() -> int:
    """CPUs this process may actually use (affinity-aware)."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # pragma: no cover - non-Linux platforms
        return os.cpu_count() or 1


class WorkerPool:
    """A lazily-spawned, persistent process pool of a fixed size.

    Instances are cheap until :meth:`ensure_started` (or the first
    :meth:`submit`) actually creates the executor.  A pool that fails to
    start marks itself broken; callers should run inline, or ask for a
    bounded :meth:`respawn` first.
    """

    def __init__(
        self,
        workers: int,
        warmup_deadline: float | None = None,
        max_respawns: int | None = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        #: Seconds the warm-up wave may take before the pool is declared
        #: broken (satellite fix: this used to be a hard-coded 60).
        self.warmup_deadline = (
            warmup_deadline if warmup_deadline is not None else warmup_timeout()
        )
        self.max_respawns = (
            max_respawns
            if max_respawns is not None
            else _env_int("REPRO_POOL_RESPAWNS", DEFAULT_MAX_RESPAWNS)
        )
        self._executor: ProcessPoolExecutor | None = None
        self._blackboard: Any = None
        self._failed = False
        self._respawns = 0

    # ------------------------------------------------------------------
    @property
    def started(self) -> bool:
        return self._executor is not None

    @property
    def failed(self) -> bool:
        """Whether the pool is currently marked broken."""
        return self._failed

    @property
    def respawns_used(self) -> int:
        return self._respawns

    @property
    def blackboard(self) -> Any:
        """The shared float array (``None`` until the pool started)."""
        return self._blackboard

    def ensure_started(self, warm: bool = True) -> bool:
        """Spawn the executor if needed; ``False`` if unavailable.

        With ``warm`` (the default) a wave of trivial tasks is pushed
        through so every worker process exists before real work arrives —
        the "spawned once per simulation" contract of the parallel search.
        A warm-up that exceeds :attr:`warmup_deadline` (or a worker that
        dies during it) marks the pool broken instead of raising; callers
        fall back inline, exactly as for any other unavailable pool.
        """
        if self._failed:
            return False
        if self._executor is None:
            try:
                faults.fire("worker.spawn")
                ctx = mp.get_context()
                self._blackboard = ctx.Array("d", BLACKBOARD_SLOTS)
                self._executor = ProcessPoolExecutor(
                    max_workers=self.workers,
                    mp_context=ctx,
                    initializer=_init_worker,
                    initargs=(self._blackboard,),
                )
                if warm:
                    naptime = 0.005 if self.workers > 1 else 0.0
                    futures = [
                        self._executor.submit(_warm, i, naptime)
                        for i in range(self.workers)
                    ]
                    for future in futures:
                        future.result(timeout=self.warmup_deadline)
            except Exception:
                # Covers spawn failure, a worker dying during warm-up
                # (BrokenProcessPool) and a warm-up deadline overrun
                # (TimeoutError): the pool is broken, not the caller.
                self.shutdown(wait=False)
                self._failed = True
                return False
        return True

    # ------------------------------------------------------------------
    def submit(self, fn: Callable[..., _T], /, *args: Any) -> "Future[_T]":
        """Submit one task; raises ``RuntimeError`` if the pool is down."""
        if not self.ensure_started(warm=False) or self._executor is None:
            raise RuntimeError("worker pool is not available")
        return self._executor.submit(fn, *args)

    def crash_worker(self, code: int = 1) -> bool:
        """Kill one live worker abruptly (fault injection / chaos tests).

        Returns whether a kill task could be submitted.  The dying worker
        breaks the executor, so in-flight and subsequent futures raise
        ``BrokenProcessPool`` — the exact failure mode supervision must
        recover from.
        """
        if self._executor is None:
            return False
        try:
            self._executor.submit(_abrupt_exit, code)
            return True
        except Exception:
            return False

    def mark_broken(self) -> None:
        """Record a transport failure: tear down and stop accepting work.

        Tear-down does not wait for workers (a hung worker must not hang
        the supervisor too).  The pool stays failed until — and unless —
        :meth:`respawn` grants another attempt.
        """
        self.shutdown(wait=False)
        self._failed = True

    def respawn(self) -> bool:
        """Clear the broken flag if the respawn budget allows another try.

        Returns ``True`` when the caller may ``ensure_started`` again;
        ``False`` once the budget is spent — the pool is then permanently
        failed and every caller runs inline (the escape hatch that
        guarantees forward progress under arbitrarily hostile faults).
        """
        if self._respawns >= self.max_respawns:
            return False
        self._respawns += 1
        self._failed = False
        return True

    def shutdown(self, wait: bool = True) -> None:
        """Terminate the workers (the pool object itself stays reusable
        unless it was marked broken)."""
        if self._executor is not None:
            self._executor.shutdown(wait=wait, cancel_futures=True)
            self._executor = None
        self._blackboard = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "failed" if self._failed else ("up" if self.started else "idle")
        return (
            f"<WorkerPool workers={self.workers} {state} "
            f"respawns={self._respawns}/{self.max_respawns}>"
        )


# ----------------------------------------------------------------------
# Process-wide registry: one pool per worker count, torn down atexit.
# ----------------------------------------------------------------------
_pools: dict[int, WorkerPool] = {}


def get_pool(workers: int) -> WorkerPool:
    """The process-wide persistent pool for ``workers`` workers."""
    pool = _pools.get(workers)
    if pool is None:
        pool = WorkerPool(workers)
        _pools[workers] = pool
    return pool


def shutdown_all() -> None:
    """Shut down and forget every registered pool (tests, atexit)."""
    for pool in list(_pools.values()):
        pool.shutdown()
    _pools.clear()


atexit.register(shutdown_all)
