"""Persistent process worker pool shared across scheduling decisions.

The intra-decision parallel search engine
(:mod:`repro.core.parallel_search`) fans each decision's shards across
worker processes.  Decisions are frequent (thousands per simulated month)
and individually small (milliseconds), so paying a fork + warm-up per
decision would drown the work itself.  This module therefore keeps **one
pool per worker count alive for the whole process**:

- :func:`get_pool` returns the registered :class:`WorkerPool` for a size,
  creating the object lazily; the underlying executor is spawned on first
  use, or eagerly via :meth:`WorkerPool.ensure_started` — which the
  simulation engine's ``on_simulation_begin`` lifecycle hook calls so the
  spawn cost lands at simulation start, not inside the first decision;
- pools stay warm across decisions *and* across simulations, and are torn
  down at interpreter exit (or explicitly via :func:`shutdown_all`, which
  tests use);
- every pool carries a small shared-memory float *blackboard*, created
  before the workers spawn and inherited by all of them, used by the
  parallel search's opt-in incumbent broadcast (``share_incumbent``).

The pool is deliberately generic: submit any picklable top-level callable
with :meth:`WorkerPool.submit`.  If an executor cannot be created or
breaks (exotic platforms, resource limits), the pool marks itself failed
and callers fall back to inline execution — nothing here raises for
"no parallelism available".
"""

from __future__ import annotations

import atexit
import multiprocessing as mp
import os
import time
from concurrent.futures import Future, ProcessPoolExecutor
from typing import Any, Callable, TypeVar

_T = TypeVar("_T")

#: Float slots in each pool's shared blackboard.  The parallel search uses
#: slot 0 as a generation stamp, slot 1 as a validity flag, and the rest as
#: score payload; other consumers may claim the same slots only between
#: generations.
BLACKBOARD_SLOTS = 8

#: Set in each worker process by the executor initializer.
_worker_blackboard: Any = None


def _init_worker(blackboard: Any) -> None:
    """Executor initializer: record the inherited blackboard handle."""
    global _worker_blackboard
    _worker_blackboard = blackboard


def worker_blackboard() -> Any:
    """The pool's shared blackboard when inside a worker, else ``None``."""
    return _worker_blackboard


def _warm(index: int, naptime: float) -> int:
    """No-op warm-up task; the sleep keeps early workers busy so the
    executor actually spawns one process per outstanding task."""
    if naptime > 0.0:
        time.sleep(naptime)
    return index


def available_cores() -> int:
    """CPUs this process may actually use (affinity-aware)."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # pragma: no cover - non-Linux platforms
        return os.cpu_count() or 1


class WorkerPool:
    """A lazily-spawned, persistent process pool of a fixed size.

    Instances are cheap until :meth:`ensure_started` (or the first
    :meth:`submit`) actually creates the executor.  A pool that fails to
    start stays failed — callers should run inline instead.
    """

    def __init__(self, workers: int) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self._executor: ProcessPoolExecutor | None = None
        self._blackboard: Any = None
        self._failed = False

    # ------------------------------------------------------------------
    @property
    def started(self) -> bool:
        return self._executor is not None

    @property
    def blackboard(self) -> Any:
        """The shared float array (``None`` until the pool started)."""
        return self._blackboard

    def ensure_started(self, warm: bool = True) -> bool:
        """Spawn the executor if needed; ``False`` if unavailable.

        With ``warm`` (the default) a wave of trivial tasks is pushed
        through so every worker process exists before real work arrives —
        the "spawned once per simulation" contract of the parallel search.
        """
        if self._failed:
            return False
        if self._executor is None:
            try:
                ctx = mp.get_context()
                self._blackboard = ctx.Array("d", BLACKBOARD_SLOTS)
                self._executor = ProcessPoolExecutor(
                    max_workers=self.workers,
                    mp_context=ctx,
                    initializer=_init_worker,
                    initargs=(self._blackboard,),
                )
                if warm:
                    naptime = 0.005 if self.workers > 1 else 0.0
                    futures = [
                        self._executor.submit(_warm, i, naptime)
                        for i in range(self.workers)
                    ]
                    for future in futures:
                        future.result(timeout=60)
            except Exception:
                self.shutdown()
                self._failed = True
                return False
        return True

    # ------------------------------------------------------------------
    def submit(self, fn: Callable[..., _T], /, *args: Any) -> "Future[_T]":
        """Submit one task; raises ``RuntimeError`` if the pool is down."""
        if not self.ensure_started(warm=False) or self._executor is None:
            raise RuntimeError("worker pool is not available")
        return self._executor.submit(fn, *args)

    def mark_broken(self) -> None:
        """Record a transport failure: shut down and stop trying."""
        self.shutdown()
        self._failed = True

    def shutdown(self) -> None:
        """Terminate the workers (the pool object itself stays reusable
        unless it was marked broken)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None
        self._blackboard = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "failed" if self._failed else ("up" if self.started else "idle")
        return f"<WorkerPool workers={self.workers} {state}>"


# ----------------------------------------------------------------------
# Process-wide registry: one pool per worker count, torn down atexit.
# ----------------------------------------------------------------------
_pools: dict[int, WorkerPool] = {}


def get_pool(workers: int) -> WorkerPool:
    """The process-wide persistent pool for ``workers`` workers."""
    pool = _pools.get(workers)
    if pool is None:
        pool = WorkerPool(workers)
        _pools[workers] = pool
    return pool


def shutdown_all() -> None:
    """Shut down and forget every registered pool (tests, atexit)."""
    for pool in list(_pools.values()):
        pool.shutdown()
    _pools.clear()


atexit.register(shutdown_all)
