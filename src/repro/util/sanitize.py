"""Opt-in debug-mode simulation sanitizer.

When enabled (``REPRO_SANITIZE=1`` in the environment, the CLI's global
``--sanitize`` flag, or :func:`set_sanitize` from code), the simulator core
runs extra invariant checks at every state transition:

- free-node counts stay within ``[0, capacity]`` and node accounting is
  conserved (``free + running == capacity``) — :mod:`repro.simulator.cluster`
  and :mod:`repro.simulator.engine`;
- event times are monotone non-decreasing across the run —
  :mod:`repro.simulator.engine`;
- the queue never contains started jobs — :mod:`repro.simulator.engine`;
- profile reservations conserve node-seconds exactly and never corrupt the
  step function — :mod:`repro.core.profile`;
- search decisions only start jobs that fit the free nodes *now* —
  :mod:`repro.core.scheduler`.

The checks are strictly read-only: a sanitized run produces byte-identical
metrics to an unsanitized one (asserted by ``tests/test_sanitizer.py``).
Violations raise :class:`InvariantViolation` with a message naming the
broken invariant and the offending values.

The enabled-state is cached after the first environment read (the hot
paths consult it millions of times per search); use :func:`set_sanitize`
— not ``os.environ`` — to flip it mid-process.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator

_TRUTHY = {"1", "true", "yes", "on"}

#: Tri-state: ``None`` means "defer to the REPRO_SANITIZE env var".
_override: bool | None = None
#: Cached env-var reading; invalidated by :func:`set_sanitize`.
_env_cache: bool | None = None


class InvariantViolation(AssertionError):
    """A simulation-core invariant was broken (only raised when sanitizing)."""


def sanitize_enabled() -> bool:
    """Whether debug-mode invariant checking is active."""
    global _env_cache
    if _override is not None:
        return _override
    if _env_cache is None:
        _env_cache = (
            os.environ.get("REPRO_SANITIZE", "").strip().lower() in _TRUTHY
        )
    return _env_cache


def set_sanitize(value: bool | None) -> None:
    """Force sanitizing on/off, or ``None`` to re-read ``REPRO_SANITIZE``."""
    global _override, _env_cache
    _override = value
    _env_cache = None


@contextmanager
def sanitized(value: bool = True) -> Iterator[None]:
    """Context manager scoping a :func:`set_sanitize` override (for tests)."""
    previous = _override
    set_sanitize(value)
    try:
        yield
    finally:
        set_sanitize(previous)


def require(condition: bool, message: str) -> None:
    """Raise :class:`InvariantViolation` with ``message`` unless ``condition``.

    Callers must guard the call site with :func:`sanitize_enabled` when the
    message is expensive to build; ``require`` itself assumes the decision
    to check has already been made.
    """
    if not condition:
        raise InvariantViolation(message)
