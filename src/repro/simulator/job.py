"""Job model.

A job is submitted with a requested number of nodes ``N`` and a requested
runtime ``R``; it actually runs for ``T`` (its *actual* runtime).  Schedulers
see either ``T`` or ``R`` depending on the experiment (the paper's ``R* = T``
vs ``R* = R``, Section 6.4); the simulator always uses ``T`` to fire the
completion event.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.util.timeunits import MINUTE
from repro.util.validation import check_non_negative, check_positive


class JobState(enum.Enum):
    """Lifecycle of a non-preemptive job."""

    PENDING = "pending"  # created, not yet submitted to the simulator
    WAITING = "waiting"  # in the queue
    RUNNING = "running"
    COMPLETED = "completed"


@dataclass(eq=False)
class Job:
    """A rigid parallel job.

    Jobs are *entities*: equality and hashing are by identity, so the same
    logical job re-created for another simulation run is a distinct object.

    Parameters
    ----------
    job_id:
        Unique identifier within one workload.
    submit_time:
        Arrival time (seconds).
    nodes:
        Requested number of nodes ``N`` (a node is the allocation unit).
    runtime:
        Actual runtime ``T`` in seconds.
    requested_runtime:
        User-requested runtime ``R`` in seconds.  Defaults to ``runtime``
        (a perfectly accurate user).
    """

    job_id: int
    submit_time: float
    nodes: int
    runtime: float
    requested_runtime: float | None = None
    #: Owning user (for fairshare objectives and runtime prediction);
    #: ``None`` for traces without user information.
    user: str | None = None

    state: JobState = field(default=JobState.PENDING, compare=False)
    start_time: float | None = field(default=None, compare=False)
    end_time: float | None = field(default=None, compare=False)

    def __post_init__(self) -> None:
        check_non_negative("submit_time", self.submit_time)
        check_positive("nodes", self.nodes)
        check_positive("runtime", self.runtime)
        if self.requested_runtime is None:
            self.requested_runtime = self.runtime
        if self.requested_runtime < self.runtime and not _ALLOW_UNDERESTIMATE:
            # Real systems kill jobs at the requested-runtime limit; traces
            # therefore have R >= T.  The SWF parser clamps; synthetic
            # generation guarantees it.
            raise ValueError(
                f"job {self.job_id}: requested_runtime {self.requested_runtime} "
                f"< runtime {self.runtime}"
            )

    # ------------------------------------------------------------------
    # Lifecycle transitions
    # ------------------------------------------------------------------
    # These methods are the only sanctioned way to mutate ``state``,
    # ``start_time`` and ``end_time`` (enforced by simlint rule SIM004):
    # funnelling every transition through one place keeps the legal
    # state machine PENDING -> WAITING -> RUNNING -> COMPLETED checkable.

    def reset_lifecycle(self) -> None:
        """Return the job to PENDING so it can be simulated again."""
        self.state = JobState.PENDING
        self.start_time = None
        self.end_time = None

    def mark_waiting(self) -> None:
        """Transition to WAITING (the job arrived and joined the queue)."""
        self.state = JobState.WAITING

    def mark_started(self, now: float) -> float:
        """Transition to RUNNING at ``now``; returns the completion time."""
        if self.state is not JobState.WAITING:
            raise ValueError(
                f"cannot start job {self.job_id} in state {self.state}"
            )
        if now < self.submit_time - 1e-9:
            # The 1e-9 tolerance matches the event queue's simultaneity
            # window: events batched at one instant share a decision.
            raise ValueError(
                f"job {self.job_id} cannot start at {now} before submit "
                f"{self.submit_time}"
            )
        self.state = JobState.RUNNING
        self.start_time = now
        self.end_time = now + self.runtime
        return self.end_time

    def mark_finished(self, now: float) -> None:
        """Transition to COMPLETED at ``now`` (must match the planned end)."""
        if self.end_time is None or abs(self.end_time - now) > 1e-6:
            raise ValueError(
                f"job {self.job_id} finishing at {now}, expected {self.end_time}"
            )
        self.state = JobState.COMPLETED

    def restore_completed(self, start_time: float, end_time: float) -> None:
        """Rehydrate a COMPLETED job from persisted results (run cache)."""
        self.state = JobState.COMPLETED
        self.start_time = float(start_time)
        self.end_time = float(end_time)

    # ------------------------------------------------------------------
    # Scheduler-visible runtime
    # ------------------------------------------------------------------
    def scheduler_runtime(self, use_actual: bool) -> float:
        """The runtime estimate the scheduler plans with (paper's ``R*``)."""
        return self.runtime if use_actual else float(self.requested_runtime)

    # ------------------------------------------------------------------
    # Derived performance measures (valid once the job has started)
    # ------------------------------------------------------------------
    @property
    def wait_time(self) -> float:
        """Queueing delay: start - submit."""
        if self.start_time is None:
            raise ValueError(f"job {self.job_id} has not started")
        return self.start_time - self.submit_time

    @property
    def turnaround_time(self) -> float:
        """Submit-to-completion time."""
        if self.end_time is None:
            raise ValueError(f"job {self.job_id} has not completed")
        return self.end_time - self.submit_time

    def current_wait(self, now: float) -> float:
        """Wait accumulated so far for a queued job."""
        return max(0.0, now - self.submit_time)

    def bounded_slowdown(self, floor: float = MINUTE) -> float:
        """Bounded slowdown with a runtime floor (paper uses 1 minute).

        ``(wait + max(T, floor)) / max(T, floor)`` — for jobs shorter than
        the floor this is ``1 + wait/floor`` (e.g. ``1 +`` wait in minutes),
        matching the paper's definition; for longer jobs it is the ordinary
        slowdown ``turnaround / T``.
        """
        denom = max(self.runtime, floor)
        return (self.wait_time + denom) / denom

    def slowdown_if_started_at(self, t: float, floor: float = MINUTE) -> float:
        """Bounded slowdown this job would have if started at time ``t``."""
        denom = max(self.runtime, floor)
        return (max(0.0, t - self.submit_time) + denom) / denom

    @property
    def area(self) -> float:
        """Processor demand ``N x T`` in node-seconds."""
        return self.nodes * self.runtime

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Job(id={self.job_id}, submit={self.submit_time:.0f}, "
            f"N={self.nodes}, T={self.runtime:.0f}, R={self.requested_runtime:.0f}, "
            f"state={self.state.value})"
        )


# Escape hatch used only by tests that deliberately construct inconsistent
# jobs (e.g. to exercise SWF clamping).
_ALLOW_UNDERESTIMATE = False
