"""Job model.

A job is submitted with a requested number of nodes ``N`` and a requested
runtime ``R``; it actually runs for ``T`` (its *actual* runtime).  Schedulers
see either ``T`` or ``R`` depending on the experiment (the paper's ``R* = T``
vs ``R* = R``, Section 6.4); the simulator always uses ``T`` to fire the
completion event.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.util.timeunits import MINUTE
from repro.util.validation import check_non_negative, check_positive


class JobState(enum.Enum):
    """Lifecycle of a non-preemptive job."""

    PENDING = "pending"  # created, not yet submitted to the simulator
    WAITING = "waiting"  # in the queue
    RUNNING = "running"
    COMPLETED = "completed"


@dataclass(eq=False)
class Job:
    """A rigid parallel job.

    Jobs are *entities*: equality and hashing are by identity, so the same
    logical job re-created for another simulation run is a distinct object.

    Parameters
    ----------
    job_id:
        Unique identifier within one workload.
    submit_time:
        Arrival time (seconds).
    nodes:
        Requested number of nodes ``N`` (a node is the allocation unit).
    runtime:
        Actual runtime ``T`` in seconds.
    requested_runtime:
        User-requested runtime ``R`` in seconds.  Defaults to ``runtime``
        (a perfectly accurate user).
    """

    job_id: int
    submit_time: float
    nodes: int
    runtime: float
    requested_runtime: float | None = None
    #: Owning user (for fairshare objectives and runtime prediction);
    #: ``None`` for traces without user information.
    user: str | None = None

    state: JobState = field(default=JobState.PENDING, compare=False)
    start_time: float | None = field(default=None, compare=False)
    end_time: float | None = field(default=None, compare=False)

    def __post_init__(self) -> None:
        check_non_negative("submit_time", self.submit_time)
        check_positive("nodes", self.nodes)
        check_positive("runtime", self.runtime)
        if self.requested_runtime is None:
            self.requested_runtime = self.runtime
        if self.requested_runtime < self.runtime and not _ALLOW_UNDERESTIMATE:
            # Real systems kill jobs at the requested-runtime limit; traces
            # therefore have R >= T.  The SWF parser clamps; synthetic
            # generation guarantees it.
            raise ValueError(
                f"job {self.job_id}: requested_runtime {self.requested_runtime} "
                f"< runtime {self.runtime}"
            )

    # ------------------------------------------------------------------
    # Scheduler-visible runtime
    # ------------------------------------------------------------------
    def scheduler_runtime(self, use_actual: bool) -> float:
        """The runtime estimate the scheduler plans with (paper's ``R*``)."""
        return self.runtime if use_actual else float(self.requested_runtime)

    # ------------------------------------------------------------------
    # Derived performance measures (valid once the job has started)
    # ------------------------------------------------------------------
    @property
    def wait_time(self) -> float:
        """Queueing delay: start - submit."""
        if self.start_time is None:
            raise ValueError(f"job {self.job_id} has not started")
        return self.start_time - self.submit_time

    @property
    def turnaround_time(self) -> float:
        """Submit-to-completion time."""
        if self.end_time is None:
            raise ValueError(f"job {self.job_id} has not completed")
        return self.end_time - self.submit_time

    def current_wait(self, now: float) -> float:
        """Wait accumulated so far for a queued job."""
        return max(0.0, now - self.submit_time)

    def bounded_slowdown(self, floor: float = MINUTE) -> float:
        """Bounded slowdown with a runtime floor (paper uses 1 minute).

        ``(wait + max(T, floor)) / max(T, floor)`` — for jobs shorter than
        the floor this is ``1 + wait/floor`` (e.g. ``1 +`` wait in minutes),
        matching the paper's definition; for longer jobs it is the ordinary
        slowdown ``turnaround / T``.
        """
        denom = max(self.runtime, floor)
        return (self.wait_time + denom) / denom

    def slowdown_if_started_at(self, t: float, floor: float = MINUTE) -> float:
        """Bounded slowdown this job would have if started at time ``t``."""
        denom = max(self.runtime, floor)
        return (max(0.0, t - self.submit_time) + denom) / denom

    @property
    def area(self) -> float:
        """Processor demand ``N x T`` in node-seconds."""
        return self.nodes * self.runtime

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Job(id={self.job_id}, submit={self.submit_time:.0f}, "
            f"N={self.nodes}, T={self.runtime:.0f}, R={self.requested_runtime:.0f}, "
            f"state={self.state.value})"
        )


# Escape hatch used only by tests that deliberately construct inconsistent
# jobs (e.g. to exercise SWF clamping).
_ALLOW_UNDERESTIMATE = False
