"""Scheduling-policy interface.

A policy is consulted at every decision point (job arrival or departure) and
answers one question: *which waiting jobs start right now?*  It never starts
jobs in the future — reservations and planned schedules are internal policy
state that is recomputed at the next decision point, exactly as in the
paper's simulator.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from repro.simulator.cluster import Cluster
from repro.simulator.job import Job

if TYPE_CHECKING:  # pragma: no cover - typing-only import cycle guard
    from repro.predict.source import RuntimeSource


@dataclass(frozen=True)
class RunningJob:
    """Policy-visible view of a running job.

    ``release_time`` is when the *scheduler believes* the job's nodes come
    back: actual end time when planning with actual runtimes (R* = T), or
    ``start + R`` when planning with requested runtimes (R* = R).  The
    engine computes it so every policy plans against the same information.
    """

    job: Job
    release_time: float

    @property
    def nodes(self) -> int:
        return self.job.nodes


class SchedulingPolicy(abc.ABC):
    """Base class for all scheduling policies.

    Subclasses implement :meth:`decide`.  The engine guarantees:

    - ``waiting`` contains every queued job (state WAITING), in submit order;
    - ``running`` describes every running job with its believed release time;
    - any job returned must fit in the currently free nodes (the engine
      re-validates and raises otherwise, since a policy bug here would
      silently corrupt results).
    """

    #: Human-readable policy name used in reports, e.g. ``"DDS/lxf/dynB"``.
    name: str = "policy"

    #: How the policy resolves planning runtimes (the paper's R*): actual
    #: (R* = T), requested (R* = R), or a predictor.  The engine reads it
    #: to compute ``RunningJob.release_time`` and to feed completions back
    #: to learning sources.  Concrete policies set this in ``__init__``
    #: via :func:`repro.predict.source.resolve_runtime_source`; the class
    #: default (actual runtimes, set below) covers minimal policies that
    #: never plan into the future.
    runtime_source: "RuntimeSource"

    @property
    def use_actual_runtime(self) -> bool:
        """Whether the policy plans with exact runtimes (R* = T)."""
        return self.runtime_source.is_actual

    def runtime_of(self, job: Job) -> float:
        """The planning runtime R* for ``job``."""
        return self.runtime_source.of(job)

    @abc.abstractmethod
    def decide(
        self,
        now: float,
        waiting: Sequence[Job],
        running: Sequence[RunningJob],
        cluster: Cluster,
    ) -> list[Job]:
        """Return the subset of ``waiting`` to start at time ``now``.

        The returned jobs must be mutually feasible: their total node demand
        may not exceed the free nodes.
        """

    def on_start(self, job: Job, now: float) -> None:
        """Hook: the engine started ``job`` at ``now``.  Default: no-op."""

    def on_finish(self, job: Job, now: float) -> None:
        """Hook: ``job`` completed at ``now``.  Default: no-op."""

    def on_simulation_begin(self) -> None:
        """Hook: a simulation is about to run its event loop.

        Policies acquire expensive process-wide resources here — e.g. the
        search policy pre-spawns its persistent worker pool so the fork
        cost lands before the first decision, not inside it.  Default:
        no-op.
        """

    def on_simulation_end(self) -> None:
        """Hook: the event loop finished (or raised).  Always called when
        :meth:`on_simulation_begin` was.  Default: no-op."""

    def reset(self) -> None:
        """Clear any per-run state so a policy object can be reused."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name}>"


# Class-level default: plan with actual runtimes.  Imported at the bottom
# to keep the typing-only import above and the runtime import apart.
from repro.predict.source import ActualRuntimeSource as _ActualRuntimeSource  # noqa: E402

SchedulingPolicy.runtime_source = _ActualRuntimeSource()
