"""The event-driven simulation engine.

Drives a :class:`~repro.simulator.policy.SchedulingPolicy` over a workload on
a :class:`~repro.simulator.cluster.Cluster`: arrivals and completions are the
only events; after the state update at each distinct event time the policy is
consulted once and the jobs it returns are started.

The engine also accumulates the time-integrals the evaluation needs (average
queue length, utilization) restricted to a measurement window, which is how
the paper excludes the warm-up/cool-down weeks from each month's statistics.
"""

from __future__ import annotations

import time as _wallclock
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.metrics.timeseries import StateTimeSeries
from repro.simulator.cluster import Cluster, ClusterConfig
from repro.simulator.events import Event, EventKind, EventQueue
from repro.simulator.job import Job, JobState
from repro.simulator.policy import RunningJob, SchedulingPolicy
from repro.util.sanitize import require, sanitize_enabled


@dataclass
class SimulationResult:
    """Everything a simulation run produces.

    ``jobs`` contains *all* completed jobs (including warm-up/cool-down);
    metrics code filters on the window itself so different windows can be
    evaluated from one run.
    """

    jobs: list[Job]
    window: tuple[float, float]
    avg_queue_length: float
    utilization: float
    decision_count: int
    sim_end_time: float
    wall_seconds: float
    policy_name: str
    extra: dict[str, object] = field(default_factory=dict)
    #: Per-event state samples; ``None`` unless the simulation was created
    #: with ``record_timeseries=True``.
    timeseries: "StateTimeSeries | None" = None

    def jobs_in_window(self) -> list[Job]:
        """Jobs submitted inside the measurement window."""
        lo, hi = self.window
        return [j for j in self.jobs if lo <= j.submit_time < hi]


class Simulation:
    """One simulation run.

    Parameters
    ----------
    jobs:
        The workload.  Jobs must satisfy the cluster's admission limits.
    policy:
        The scheduling policy under test.
    cluster_config:
        Machine description; defaults to the 128-node Titan configuration.
    window:
        ``(lo, hi)`` measurement window for time-averaged statistics.
        Defaults to the full span of the workload.
    """

    def __init__(
        self,
        jobs: Iterable[Job],
        policy: SchedulingPolicy,
        cluster_config: ClusterConfig | None = None,
        window: tuple[float, float] | None = None,
        record_timeseries: bool = False,
    ) -> None:
        self.jobs = sorted(jobs, key=lambda j: (j.submit_time, j.job_id))
        if not self.jobs:
            raise ValueError("cannot simulate an empty workload")
        ids = [j.job_id for j in self.jobs]
        if len(set(ids)) != len(ids):
            raise ValueError("duplicate job ids in workload")
        self.policy = policy
        self.cluster = Cluster(cluster_config)
        for job in self.jobs:
            if not self.cluster.admits(job):
                raise ValueError(
                    f"job {job.job_id} (N={job.nodes}, "
                    f"R={job.requested_runtime}) violates cluster limits"
                )
        if window is None:
            window = (self.jobs[0].submit_time, self.jobs[-1].submit_time + 1.0)
        self.window = window
        self.record_timeseries = record_timeseries

    # ------------------------------------------------------------------
    def run(self) -> SimulationResult:
        """Run to completion of every job and return the results."""
        wall_start = _wallclock.perf_counter()
        self.policy.reset()
        self.policy.runtime_source.reset()

        # Lifecycle hooks bracket the whole event loop: policies that hold
        # process-wide resources (the parallel search's persistent worker
        # pool) acquire them once per simulation, not per decision.
        self.policy.on_simulation_begin()
        try:
            return self._run_loop(wall_start)
        finally:
            self.policy.on_simulation_end()

    def _run_loop(self, wall_start: float) -> SimulationResult:
        sanitize = sanitize_enabled()
        events = EventQueue()
        for job in self.jobs:
            job.reset_lifecycle()
            events.push(job.submit_time, EventKind.ARRIVAL, job)

        waiting: list[Job] = []
        completed: list[Job] = []
        timeseries = StateTimeSeries() if self.record_timeseries else None
        decision_count = 0
        queue_integral = 0.0
        busy_integral = 0.0
        prev_time = events.peek_time() or 0.0
        win_lo, win_hi = self.window

        while events:
            batch = events.pop_simultaneous()
            now = batch[0].time
            if sanitize:
                self._sanitize_batch(batch, now, prev_time)

            # Accumulate time-weighted statistics over [prev_time, now),
            # clipped to the measurement window.
            overlap = min(now, win_hi) - max(prev_time, win_lo)
            if overlap > 0:
                queue_integral += len(waiting) * overlap
                busy_integral += self.cluster.used_nodes * overlap
            prev_time = now

            # State update: completions release nodes before arrivals are
            # queued, mirroring the deterministic tie-break of the queue.
            batch.sort(key=lambda e: (e.kind is not EventKind.FINISH, e.seq))
            for event in batch:
                job = event.payload
                if event.kind is EventKind.FINISH:
                    self.cluster.finish(job, now)
                    completed.append(job)
                    # Learning runtime sources (predictors) observe every
                    # completion before the policy's own hook runs.
                    self.policy.runtime_source.observe_completion(job, now)
                    self.policy.on_finish(job, now)
                else:
                    job.mark_waiting()
                    waiting.append(job)

            # One scheduling decision per distinct event time.
            decision_count += 1
            if sanitize:
                self._sanitize_queue(waiting, now)
            running_view = self._running_view(now)
            to_start = self.policy.decide(now, tuple(waiting), running_view, self.cluster)
            self._start_jobs(to_start, waiting, events, now)

            if timeseries is not None:
                backlog = sum(j.nodes * j.runtime for j in waiting)
                timeseries.record(
                    now, len(waiting), self.cluster.used_nodes, backlog
                )

        window_span = max(win_hi - win_lo, 1e-12)
        result = SimulationResult(
            jobs=completed,
            window=self.window,
            avg_queue_length=queue_integral / window_span,
            utilization=busy_integral / (window_span * self.cluster.capacity),
            decision_count=decision_count,
            sim_end_time=prev_time,
            wall_seconds=_wallclock.perf_counter() - wall_start,
            policy_name=self.policy.name,
            extra=dict(getattr(self.policy, "stats", {}) or {}),
            timeseries=timeseries,
        )
        if len(completed) != len(self.jobs):
            raise AssertionError(
                f"simulation ended with {len(self.jobs) - len(completed)} "
                "unfinished jobs (policy starvation or engine bug)"
            )
        return result

    # ------------------------------------------------------------------
    # Debug-mode invariant checks (see repro.util.sanitize); all read-only.
    # ------------------------------------------------------------------
    def _sanitize_batch(
        self, batch: Sequence[Event], now: float, prev_time: float
    ) -> None:
        """Event times must be monotone non-decreasing across the run."""
        require(
            now >= prev_time - 1e-9,
            f"time travel: event batch at {now} after clock reached {prev_time}",
        )
        for event in batch:
            require(
                event.time >= prev_time - 1e-9,
                f"time travel: {event.kind.value} event at {event.time} "
                f"after clock reached {prev_time}",
            )

    def _sanitize_queue(self, waiting: Sequence[Job], now: float) -> None:
        """The queue holds only un-started WAITING jobs; nodes conserve."""
        for job in waiting:
            require(
                job.state is JobState.WAITING,
                f"queue contains job {job.job_id} in state {job.state.value} "
                f"at t={now}",
            )
            require(
                job.start_time is None,
                f"queue contains started job {job.job_id} "
                f"(start_time={job.start_time}) at t={now}",
            )
        cluster = self.cluster
        require(
            0 <= cluster.free_nodes <= cluster.capacity,
            f"free-node count {cluster.free_nodes} outside "
            f"[0, {cluster.capacity}] at t={now}",
        )
        occupied = sum(j.nodes for j in cluster.running_jobs)
        require(
            cluster.free_nodes + occupied == cluster.capacity,
            f"node accounting broken at t={now}: {cluster.free_nodes} free "
            f"+ {occupied} running != capacity {cluster.capacity}",
        )

    # ------------------------------------------------------------------
    def _running_view(self, now: float) -> tuple[RunningJob, ...]:
        """Build the policy's view of running jobs with believed releases."""
        source = self.policy.runtime_source
        views = []
        for job in self.cluster.running_jobs:
            assert job.start_time is not None and job.end_time is not None
            if source.is_actual:
                release = job.end_time
            else:
                release = source.believed_release(job, now)
            # An over-estimating source (R >= T) always yields a future
            # release.  An optimistic predictor can believe the release is
            # already past; the job is nonetheless still occupying its
            # nodes *right now*, so clamp the belief to "imminently" —
            # strictly after now — or the planner would hand those nodes
            # to someone else this instant.
            views.append(
                RunningJob(job=job, release_time=max(release, now + 1.0))
            )
        views.sort(key=lambda r: (r.release_time, r.job.job_id))
        return tuple(views)

    def _start_jobs(
        self,
        to_start: Sequence[Job],
        waiting: list[Job],
        events: EventQueue,
        now: float,
    ) -> None:
        """Validate and start the policy's chosen jobs."""
        seen: set[int] = set()
        for job in to_start:
            if job.job_id in seen:
                raise ValueError(f"policy returned job {job.job_id} twice")
            seen.add(job.job_id)
            if job.state is not JobState.WAITING:
                raise ValueError(
                    f"policy returned job {job.job_id} in state {job.state}"
                )
            end = self.cluster.start(job, now)  # raises if over capacity
            waiting.remove(job)
            events.push(end, EventKind.FINISH, job)
            self.policy.on_start(job, now)
