"""The event-driven simulation engine.

Drives a :class:`~repro.simulator.policy.SchedulingPolicy` over a workload on
a :class:`~repro.simulator.cluster.Cluster`: arrivals and completions are the
only events; after the state update at each distinct event time the policy is
consulted once and the jobs it returns are started.

The engine also accumulates the time-integrals the evaluation needs (average
queue length, utilization) restricted to a measurement window, which is how
the paper excludes the warm-up/cool-down weeks from each month's statistics.

Long runs can be made interrupt-safe: give :class:`Simulation` a
:class:`~repro.simulator.checkpoint.CheckpointConfig` and the whole loop
state (event queue, cluster, queue, accumulators, policy, RNG stream) is
snapshotted every N decisions; :func:`repro.simulator.checkpoint.resume`
continues an interrupted run to a bit-identical finish (see
``docs/robustness.md``).

The loop body itself is one method — :meth:`Simulation.consume_batch`
processes a single simultaneous event batch (accounting, completions
before arrivals, exactly one policy decision, job starts) — so a caller
that receives events incrementally can drive the very same code the batch
loop runs.  :meth:`Simulation.open_ended` builds a :class:`Simulation`
without a pre-declared workload for exactly that purpose: the
scheduler-as-a-service tenant engine (:mod:`repro.service.tenant`) feeds
arrival events as they come and stays bit-identical to a batch run over
the same trace because both paths share :meth:`consume_batch`.
"""

from __future__ import annotations

import time as _wallclock
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from repro.metrics.timeseries import StateTimeSeries
from repro.simulator.checkpoint import CheckpointConfig, save_checkpoint
from repro.simulator.cluster import Cluster, ClusterConfig
from repro.simulator.events import Event, EventKind, EventQueue
from repro.simulator.job import Job, JobState
from repro.simulator.policy import RunningJob, SchedulingPolicy
from repro.util import faults
from repro.util.sanitize import require, sanitize_enabled


@dataclass
class SimulationResult:
    """Everything a simulation run produces.

    ``jobs`` contains *all* completed jobs (including warm-up/cool-down);
    metrics code filters on the window itself so different windows can be
    evaluated from one run.
    """

    jobs: list[Job]
    window: tuple[float, float]
    avg_queue_length: float
    utilization: float
    decision_count: int
    sim_end_time: float
    wall_seconds: float
    policy_name: str
    extra: dict[str, object] = field(default_factory=dict)
    #: Per-event state samples; ``None`` unless the simulation was created
    #: with ``record_timeseries=True``.
    timeseries: "StateTimeSeries | None" = None

    def jobs_in_window(self) -> list[Job]:
        """Jobs submitted inside the measurement window."""
        lo, hi = self.window
        return [j for j in self.jobs if lo <= j.submit_time < hi]


@dataclass
class LoopState:
    """Everything the event loop mutates, gathered for checkpointing.

    A :class:`Simulation` is immutable once constructed except for the
    policy (which pickles alongside the simulation object); the loop's own
    progress lives here so one snapshot of ``(simulation, state)`` is the
    complete resume point.  ``saved_at`` records the decision count of the
    last snapshot so a resumed run does not immediately re-save.
    """

    events: EventQueue
    waiting: list[Job]
    completed: list[Job]
    timeseries: StateTimeSeries | None
    decision_count: int = 0
    queue_integral: float = 0.0
    busy_integral: float = 0.0
    prev_time: float = 0.0
    saved_at: int = -1


#: Signature of a decision override handed to :meth:`Simulation.consume_batch`
#: — same contract as :meth:`~repro.simulator.policy.SchedulingPolicy.decide`.
#: The service layer uses it to route a decision through its degradation
#: ladder while everything else (state update, validation, job starts)
#: stays the engine's.
DecideFn = Callable[
    [float, "tuple[Job, ...]", "tuple[RunningJob, ...]", Cluster], "list[Job]"
]


class Simulation:
    """One simulation run.

    Parameters
    ----------
    jobs:
        The workload.  Jobs must satisfy the cluster's admission limits.
    policy:
        The scheduling policy under test.
    cluster_config:
        Machine description; defaults to the 128-node Titan configuration.
    window:
        ``(lo, hi)`` measurement window for time-averaged statistics.
        Defaults to the full span of the workload.
    checkpoint:
        Optional :class:`~repro.simulator.checkpoint.CheckpointConfig`;
        when set, the loop snapshots itself every ``every_decisions``
        scheduling decisions so an interrupted run can be resumed.
    """

    def __init__(
        self,
        jobs: Iterable[Job],
        policy: SchedulingPolicy,
        cluster_config: ClusterConfig | None = None,
        window: tuple[float, float] | None = None,
        record_timeseries: bool = False,
        checkpoint: CheckpointConfig | None = None,
    ) -> None:
        self.jobs = sorted(jobs, key=lambda j: (j.submit_time, j.job_id))
        if not self.jobs:
            raise ValueError("cannot simulate an empty workload")
        ids = [j.job_id for j in self.jobs]
        if len(set(ids)) != len(ids):
            raise ValueError("duplicate job ids in workload")
        self.policy = policy
        self.cluster = Cluster(cluster_config)
        for job in self.jobs:
            if not self.cluster.admits(job):
                raise ValueError(
                    f"job {job.job_id} (N={job.nodes}, "
                    f"R={job.requested_runtime}) violates cluster limits"
                )
        if window is None:
            window = (self.jobs[0].submit_time, self.jobs[-1].submit_time + 1.0)
        self.window = window
        self.record_timeseries = record_timeseries
        self.checkpoint = checkpoint

    @classmethod
    def open_ended(
        cls,
        policy: SchedulingPolicy,
        cluster_config: ClusterConfig | None = None,
        window: tuple[float, float] | None = None,
        record_timeseries: bool = False,
    ) -> "Simulation":
        """A :class:`Simulation` with no pre-declared workload.

        The batch constructor validates and sorts a complete job list up
        front; an online driver (the service tenant engine) has no such
        list — jobs arrive one event at a time and are admission-checked
        at the door instead.  An open-ended simulation therefore starts
        with an empty workload and is driven exclusively through
        :meth:`consume_batch`; :meth:`run` would be meaningless (there is
        no event horizon) and must not be called on it.  ``window``
        defaults to ``(0, +inf)`` so the accumulated integrals cover the
        whole stream; pass the batch run's window to reproduce its
        accounting exactly.
        """
        sim = cls.__new__(cls)
        sim.jobs = []
        sim.policy = policy
        sim.cluster = Cluster(cluster_config)
        sim.window = window if window is not None else (0.0, float("inf"))
        sim.record_timeseries = record_timeseries
        sim.checkpoint = None
        return sim

    # ------------------------------------------------------------------
    def run(self) -> SimulationResult:
        """Run to completion of every job and return the results."""
        self.policy.reset()
        self.policy.runtime_source.reset()
        return self._execute(self._fresh_state())

    def resume_from(self, state: LoopState) -> SimulationResult:
        """Continue an interrupted run from a restored :class:`LoopState`.

        Unlike :meth:`run` this does **not** reset the policy or the
        runtime source — their mid-run state travelled inside the
        checkpoint and resetting it would diverge from the uninterrupted
        run.  Normally reached via
        :func:`repro.simulator.checkpoint.resume`.
        """
        return self._execute(state)

    def _fresh_state(self) -> LoopState:
        events = EventQueue()
        for job in self.jobs:
            job.reset_lifecycle()
            events.push(job.submit_time, EventKind.ARRIVAL, job)
        return LoopState(
            events=events,
            waiting=[],
            completed=[],
            timeseries=StateTimeSeries() if self.record_timeseries else None,
            prev_time=events.peek_time() or 0.0,
        )

    def _execute(self, state: LoopState) -> SimulationResult:
        wall_start = _wallclock.perf_counter()
        # Lifecycle hooks bracket the whole event loop: policies that hold
        # process-wide resources (the parallel search's persistent worker
        # pool) acquire them once per simulation, not per decision.
        self.policy.on_simulation_begin()
        try:
            return self._run_loop(wall_start, state)
        finally:
            self.policy.on_simulation_end()

    def _run_loop(self, wall_start: float, st: LoopState) -> SimulationResult:
        ckpt = self.checkpoint
        win_lo, win_hi = self.window

        while st.events:
            # Snapshot *before* consuming the next batch, so an injected
            # or real crash right after loses at most the work since the
            # previous snapshot and the resumed loop re-enters here with
            # the queue intact.
            if (
                ckpt is not None
                and st.decision_count > 0
                and st.decision_count % ckpt.every_decisions == 0
                and st.decision_count != st.saved_at
            ):
                save_checkpoint(self, st)
                st.saved_at = st.decision_count
            faults.fire("engine.step")

            self.consume_batch(st, st.events.pop_simultaneous())

        window_span = max(win_hi - win_lo, 1e-12)
        result = SimulationResult(
            jobs=st.completed,
            window=self.window,
            avg_queue_length=st.queue_integral / window_span,
            utilization=st.busy_integral / (window_span * self.cluster.capacity),
            decision_count=st.decision_count,
            sim_end_time=st.prev_time,
            wall_seconds=_wallclock.perf_counter() - wall_start,
            policy_name=self.policy.name,
            extra=dict(getattr(self.policy, "stats", {}) or {}),
            timeseries=st.timeseries,
        )
        if len(st.completed) != len(self.jobs):
            raise AssertionError(
                f"simulation ended with {len(self.jobs) - len(st.completed)} "
                "unfinished jobs (policy starvation or engine bug)"
            )
        return result

    # ------------------------------------------------------------------
    def consume_batch(
        self,
        st: LoopState,
        batch: list[Event],
        decide: DecideFn | None = None,
    ) -> list[Job]:
        """Process one simultaneous event batch; returns the jobs started.

        This is the loop body of :meth:`run`, factored out so an
        incremental driver (the service tenant engine) can feed batches as
        they arrive and still execute the exact batch-loop semantics:
        time-weighted accounting over ``[prev_time, now)``, completions
        released before arrivals are queued, exactly one scheduling
        decision per distinct event time, and engine-side validation of
        the chosen jobs.  ``decide`` overrides *only* the policy
        consultation (same signature and contract as
        :meth:`~repro.simulator.policy.SchedulingPolicy.decide`); the
        ``on_start``/``on_finish``/runtime-source hooks still go to
        ``self.policy``, so tenant-held policy state stays consistent no
        matter which rung of a degradation ladder answered.
        """
        sanitize = sanitize_enabled()
        win_lo, win_hi = self.window
        now = batch[0].time
        if sanitize:
            self._sanitize_batch(batch, now, st.prev_time)

        # Accumulate time-weighted statistics over [prev_time, now),
        # clipped to the measurement window.
        overlap = min(now, win_hi) - max(st.prev_time, win_lo)
        if overlap > 0:
            st.queue_integral += len(st.waiting) * overlap
            st.busy_integral += self.cluster.used_nodes * overlap
        st.prev_time = now

        # State update: completions release nodes before arrivals are
        # queued, mirroring the deterministic tie-break of the queue.
        batch.sort(key=lambda e: (e.kind is not EventKind.FINISH, e.seq))
        for event in batch:
            job = event.payload
            if event.kind is EventKind.FINISH:
                self.cluster.finish(job, now)
                st.completed.append(job)
                # Learning runtime sources (predictors) observe every
                # completion before the policy's own hook runs.
                self.policy.runtime_source.observe_completion(job, now)
                self.policy.on_finish(job, now)
            else:
                job.mark_waiting()
                st.waiting.append(job)

        # One scheduling decision per distinct event time.
        st.decision_count += 1
        if sanitize:
            self._sanitize_queue(st.waiting, now)
        running_view = self._running_view(now)
        if decide is None:
            to_start = self.policy.decide(
                now, tuple(st.waiting), running_view, self.cluster
            )
        else:
            to_start = decide(now, tuple(st.waiting), running_view, self.cluster)
        started = list(to_start)
        self._start_jobs(started, st.waiting, st.events, now)

        if st.timeseries is not None:
            backlog = sum(j.nodes * j.runtime for j in st.waiting)
            st.timeseries.record(
                now, len(st.waiting), self.cluster.used_nodes, backlog
            )
        return started

    # ------------------------------------------------------------------
    # Debug-mode invariant checks (see repro.util.sanitize); all read-only.
    # ------------------------------------------------------------------
    def _sanitize_batch(
        self, batch: Sequence[Event], now: float, prev_time: float
    ) -> None:
        """Event times must be monotone non-decreasing across the run."""
        require(
            now >= prev_time - 1e-9,
            f"time travel: event batch at {now} after clock reached {prev_time}",
        )
        for event in batch:
            require(
                event.time >= prev_time - 1e-9,
                f"time travel: {event.kind.value} event at {event.time} "
                f"after clock reached {prev_time}",
            )

    def _sanitize_queue(self, waiting: Sequence[Job], now: float) -> None:
        """The queue holds only un-started WAITING jobs; nodes conserve."""
        for job in waiting:
            require(
                job.state is JobState.WAITING,
                f"queue contains job {job.job_id} in state {job.state.value} "
                f"at t={now}",
            )
            require(
                job.start_time is None,
                f"queue contains started job {job.job_id} "
                f"(start_time={job.start_time}) at t={now}",
            )
        cluster = self.cluster
        require(
            0 <= cluster.free_nodes <= cluster.capacity,
            f"free-node count {cluster.free_nodes} outside "
            f"[0, {cluster.capacity}] at t={now}",
        )
        occupied = sum(j.nodes for j in cluster.running_jobs)
        require(
            cluster.free_nodes + occupied == cluster.capacity,
            f"node accounting broken at t={now}: {cluster.free_nodes} free "
            f"+ {occupied} running != capacity {cluster.capacity}",
        )

    # ------------------------------------------------------------------
    def _running_view(self, now: float) -> tuple[RunningJob, ...]:
        """Build the policy's view of running jobs with believed releases."""
        source = self.policy.runtime_source
        views = []
        for job in self.cluster.running_jobs:
            assert job.start_time is not None and job.end_time is not None
            if source.is_actual:
                release = job.end_time
            else:
                release = source.believed_release(job, now)
            # An over-estimating source (R >= T) always yields a future
            # release.  An optimistic predictor can believe the release is
            # already past; the job is nonetheless still occupying its
            # nodes *right now*, so clamp the belief to "imminently" —
            # strictly after now — or the planner would hand those nodes
            # to someone else this instant.
            views.append(
                RunningJob(job=job, release_time=max(release, now + 1.0))
            )
        views.sort(key=lambda r: (r.release_time, r.job.job_id))
        return tuple(views)

    def _start_jobs(
        self,
        to_start: Sequence[Job],
        waiting: list[Job],
        events: EventQueue,
        now: float,
    ) -> None:
        """Validate and start the policy's chosen jobs."""
        seen: set[int] = set()
        for job in to_start:
            if job.job_id in seen:
                raise ValueError(f"policy returned job {job.job_id} twice")
            seen.add(job.job_id)
            if job.state is not JobState.WAITING:
                raise ValueError(
                    f"policy returned job {job.job_id} in state {job.state}"
                )
            end = self.cluster.start(job, now)  # raises if over capacity
            waiting.remove(job)
            events.push(end, EventKind.FINISH, job)
            self.policy.on_start(job, now)
