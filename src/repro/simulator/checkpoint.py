"""Checkpoint/resume for long simulations.

A checkpoint is one pickle blob holding the :class:`Simulation` object,
its in-flight :class:`LoopState`, and the active per-run RNG stream —
everything the event loop reads.  Pickling them *together* is what makes
resume bit-identical: the event queue, the cluster's running set, and the
completed list all reference the same :class:`~repro.simulator.job.Job`
objects, and a single ``pickle.dumps`` preserves that aliasing exactly.

The on-disk format is ``MAGIC + sha256(blob) + "\\n" + blob``, written
atomically (:mod:`repro.util.atomio`), so a crash mid-write can never
leave a half-checkpoint that resumes into a subtly wrong state: a torn or
rotted file fails the checksum, raises :class:`CorruptCheckpoint`, and
:func:`resume` falls back to the next-newest snapshot.  ``keep`` controls
rotation — the previous snapshot is only deleted after the new one is
durably on disk.
"""

from __future__ import annotations

import hashlib
import logging
import pickle
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.util import rng
from repro.util.atomio import atomic_write_bytes

if TYPE_CHECKING:  # engine imports this module; break the cycle for types
    from repro.simulator.engine import LoopState, Simulation, SimulationResult

log = logging.getLogger("repro.checkpoint")

#: Format tag; bump the suffix when the blob layout changes.
MAGIC = b"REPRO-CKPT-1\n"

#: Filename pattern of snapshots inside a checkpoint directory.
CHECKPOINT_GLOB = "ckpt-*.pkl"


@dataclass
class CheckpointConfig:
    """Where and how often a :class:`Simulation` snapshots itself.

    ``meta`` is an arbitrary JSON-safe dict stored inside every snapshot;
    the experiment runner uses it to rebuild the :class:`PolicyRun`
    envelope (workload name, offered load) after a resume.
    """

    directory: str | Path
    every_decisions: int = 256
    keep: int = 2
    meta: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.every_decisions < 1:
            raise ValueError(
                f"every_decisions must be >= 1, got {self.every_decisions}"
            )
        if self.keep < 1:
            raise ValueError(f"keep must be >= 1, got {self.keep}")


@dataclass
class CheckpointState:
    """A restored snapshot, ready to hand to :meth:`Simulation.resume_from`."""

    simulation: "Simulation"
    state: "LoopState"
    run_stream: rng.RngStream | None
    meta: dict[str, Any]

    @property
    def decision_count(self) -> int:
        return self.state.decision_count


class CorruptCheckpoint(ValueError):
    """A checkpoint file failed magic/checksum/structure validation."""


def checkpoint_path(directory: str | Path, decision_count: int) -> Path:
    """Snapshot filename for a given decision count (sorts chronologically)."""
    return Path(directory) / f"ckpt-{decision_count:012d}.pkl"


# ----------------------------------------------------------------------
# Generic checksummed-snapshot envelope.  The simulation checkpoints below
# and the service tenant snapshots (repro.service.recovery) share this
# format, so every resumable artifact in the system gets the same torn-
# write detection for free.
# ----------------------------------------------------------------------
def dump_snapshot(record: dict[str, Any]) -> bytes:
    """Serialize ``record`` into the checksummed on-disk envelope."""
    blob = pickle.dumps(record, protocol=pickle.HIGHEST_PROTOCOL)
    digest = hashlib.sha256(blob).hexdigest().encode("ascii")
    return MAGIC + digest + b"\n" + blob


def parse_snapshot(raw: bytes, origin: str = "snapshot") -> dict[str, Any]:
    """Validate the envelope and unpickle its record.

    Raises :class:`CorruptCheckpoint` on bad magic, a checksum mismatch
    (torn write, disk rot, injected corruption) or an unpicklable blob —
    callers treat any of those as "this snapshot does not exist" and fall
    back to an older one.
    """
    if not raw.startswith(MAGIC):
        raise CorruptCheckpoint(f"{origin}: bad magic (not a repro checkpoint)")
    header, sep, blob = raw[len(MAGIC) :].partition(b"\n")
    if not sep or len(header) != 64:
        raise CorruptCheckpoint(f"{origin}: malformed checksum header")
    if hashlib.sha256(blob).hexdigest().encode("ascii") != header:
        raise CorruptCheckpoint(f"{origin}: checksum mismatch (torn write?)")
    try:
        record = pickle.loads(blob)
    except Exception as exc:
        raise CorruptCheckpoint(f"{origin}: unpicklable blob ({exc})") from None
    if not isinstance(record, dict):
        raise CorruptCheckpoint(f"{origin}: blob is not a snapshot record")
    return record


def save_checkpoint(sim: "Simulation", state: "LoopState") -> Path:
    """Snapshot ``sim`` + ``state`` into the configured directory."""
    config = sim.checkpoint
    if config is None:
        raise ValueError("simulation has no CheckpointConfig")
    record = {
        "simulation": sim,
        "state": state,
        "run_stream": rng.run_stream(),
        "meta": dict(config.meta),
    }
    path = checkpoint_path(config.directory, state.decision_count)
    atomic_write_bytes(path, dump_snapshot(record))
    _rotate(path.parent, config.keep)
    return path


def _rotate(directory: Path, keep: int) -> None:
    """Drop all but the ``keep`` newest snapshots (newest written last)."""
    snapshots = sorted(directory.glob(CHECKPOINT_GLOB))
    for old in snapshots[:-keep]:
        old.unlink(missing_ok=True)


def load_checkpoint(path: str | Path) -> CheckpointState:
    """Validate and unpickle one snapshot; raises :class:`CorruptCheckpoint`."""
    record = parse_snapshot(Path(path).read_bytes(), origin=str(path))
    if "simulation" not in record or "state" not in record:
        raise CorruptCheckpoint(f"{path}: blob is not a checkpoint record")
    return CheckpointState(
        simulation=record["simulation"],
        state=record["state"],
        run_stream=record.get("run_stream"),
        meta=dict(record.get("meta") or {}),
    )


def latest_checkpoint(directory: str | Path) -> CheckpointState | None:
    """The newest *loadable* snapshot under ``directory``, if any.

    Corrupt or torn snapshots are skipped with a logged warning — a crash
    during the final write must not strand the older good snapshot.
    """
    for path in sorted(Path(directory).glob(CHECKPOINT_GLOB), reverse=True):
        try:
            return load_checkpoint(path)
        except (OSError, CorruptCheckpoint) as exc:
            log.warning("skipping unusable checkpoint: %s", exc)
    return None


def resume(directory: str | Path) -> "SimulationResult":
    """Resume the newest usable snapshot under ``directory`` to completion.

    The snapshot's per-run RNG stream is reinstalled for the duration of
    the resumed run (and the caller's stream restored afterwards), so any
    stochastic policy component continues its sequence exactly where the
    interrupted run left off.
    """
    found = latest_checkpoint(directory)
    if found is None:
        raise FileNotFoundError(f"no usable checkpoint under {directory}")
    previous = rng.set_run_stream(found.run_stream)
    try:
        return found.simulation.resume_from(found.state)
    finally:
        rng.set_run_stream(previous)
