"""Event-driven simulator for non-preemptive space-shared parallel machines.

This package is the substrate on which every scheduling policy in the
library runs: a machine model (:mod:`repro.simulator.cluster`), a job model
(:mod:`repro.simulator.job`), an event queue (:mod:`repro.simulator.events`)
and the engine that ties them together (:mod:`repro.simulator.engine`).

Scheduling decisions are made at every job arrival and departure, exactly as
in the paper (Section 2): the policy is handed the current waiting queue and
the set of running jobs and returns the jobs to start *now*.
"""

from repro.simulator.job import Job, JobState
from repro.simulator.cluster import Cluster, ClusterConfig, JobLimits
from repro.simulator.events import Event, EventKind, EventQueue
from repro.simulator.engine import Simulation, SimulationResult
from repro.simulator.policy import SchedulingPolicy, RunningJob

__all__ = [
    "Job",
    "JobState",
    "Cluster",
    "ClusterConfig",
    "JobLimits",
    "Event",
    "EventKind",
    "EventQueue",
    "Simulation",
    "SimulationResult",
    "SchedulingPolicy",
    "RunningJob",
]
