"""Event queue for the discrete-event simulator.

Only two event kinds exist in this system — job arrival and job completion —
because the policies are non-preemptive and make decisions only at those
points (paper Section 2).  Ties are broken by a monotone sequence number so
runs are fully deterministic: simultaneous events fire in insertion order,
with completions inserted before the arrivals they unblock.
"""

from __future__ import annotations

import enum
import heapq
from dataclasses import dataclass, field
from typing import Any

from repro.util.timeunits import TIME_EPS, time_eq


class EventKind(enum.Enum):
    ARRIVAL = "arrival"
    FINISH = "finish"


@dataclass(order=True)
class Event:
    """A scheduled simulator event, ordered by (time, seq)."""

    time: float
    seq: int
    kind: EventKind = field(compare=False)
    payload: Any = field(compare=False, default=None)


class EventQueue:
    """A deterministic min-heap of :class:`Event`.

    The tie-break sequence is a plain integer counter (not an
    ``itertools.count``) so a queue snapshot pickles and restores exactly
    — checkpoint/resume (:mod:`repro.simulator.checkpoint`) must continue
    the sequence where the interrupted run left off.
    """

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._next_seq = 0

    def push(self, time: float, kind: EventKind, payload: Any = None) -> Event:
        """Schedule an event; returns it (useful for assertions in tests).

        Causality (no events scheduled before the simulation clock) is
        enforced by the engine, which knows ``now``; the queue itself only
        guarantees deterministic ordering.
        """
        event = Event(time=time, seq=self._next_seq, kind=kind, payload=payload)
        self._next_seq += 1
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event:
        if not self._heap:
            raise IndexError("pop from empty EventQueue")
        return heapq.heappop(self._heap)

    def peek_time(self) -> float | None:
        """Time of the next event, or ``None`` if the queue is empty."""
        return self._heap[0].time if self._heap else None

    def pop_simultaneous(self, eps: float = TIME_EPS) -> list[Event]:
        """Pop every event sharing the earliest timestamp (within ``eps``).

        ``eps`` defaults to :data:`repro.util.timeunits.TIME_EPS` so the
        engine's notion of "simultaneous" is the same one the availability
        profile and the timeseries use — a batch the engine folds into one
        decision point is also one breakpoint to ``from_running``.
        """
        if not self._heap:
            raise IndexError("pop from empty EventQueue")
        first = heapq.heappop(self._heap)
        batch = [first]
        while self._heap and time_eq(self._heap[0].time, first.time, eps):
            batch.append(heapq.heappop(self._heap))
        return batch

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
