"""Machine model: a space-shared cluster whose allocation unit is a node.

Mirrors the NCSA IA-64 Titan system in the paper (Table 2): 128
dual-processor nodes, a per-job node limit, and a runtime limit that changed
from 12 h to 24 h in December 2003 (captured here as per-period
:class:`JobLimits`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.simulator.job import Job, JobState
from repro.util.sanitize import require, sanitize_enabled
from repro.util.timeunits import HOUR
from repro.util.validation import check_positive


@dataclass(frozen=True)
class JobLimits:
    """Per-job admission limits (paper Table 2)."""

    max_nodes: int
    max_runtime: float  # seconds

    def admits(self, nodes: int, requested_runtime: float) -> bool:
        """Whether a job with these requests is admissible."""
        return nodes <= self.max_nodes and requested_runtime <= self.max_runtime


#: Limits for the NCSA IA-64 cluster, June 2003 - November 2003.
TITAN_LIMITS_12H = JobLimits(max_nodes=128, max_runtime=12 * HOUR)
#: Limits for the NCSA IA-64 cluster, December 2003 - March 2004.
TITAN_LIMITS_24H = JobLimits(max_nodes=128, max_runtime=24 * HOUR)


@dataclass(frozen=True)
class ClusterConfig:
    """Static description of the machine."""

    nodes: int = 128
    limits: JobLimits = TITAN_LIMITS_24H

    def __post_init__(self) -> None:
        check_positive("nodes", self.nodes)
        if self.limits.max_nodes > self.nodes:
            raise ValueError(
                f"job node limit {self.limits.max_nodes} exceeds capacity {self.nodes}"
            )


class Cluster:
    """Dynamic state of the machine: free nodes and the running set.

    The cluster enforces non-preemption and conservation invariants: a
    started job occupies exactly ``job.nodes`` nodes until its finish event,
    and the free-node count always stays within ``[0, capacity]``.
    """

    def __init__(self, config: ClusterConfig | None = None) -> None:
        self.config = config or ClusterConfig()
        self.free_nodes: int = self.config.nodes
        self._running: dict[int, Job] = {}

    @property
    def capacity(self) -> int:
        """Total number of nodes."""
        return self.config.nodes

    @property
    def used_nodes(self) -> int:
        return self.capacity - self.free_nodes

    @property
    def running_jobs(self) -> list[Job]:
        """Snapshot of currently running jobs."""
        return list(self._running.values())

    def admits(self, job: Job) -> bool:
        """Whether the job satisfies the configured per-job limits."""
        return self.config.limits.admits(job.nodes, float(job.requested_runtime))

    def can_start(self, job: Job) -> bool:
        """Whether enough nodes are free right now."""
        return job.nodes <= self.free_nodes

    def start(self, job: Job, now: float) -> float:
        """Start ``job`` at time ``now``; returns its completion time."""
        if job.state is not JobState.WAITING:
            raise ValueError(f"cannot start job {job.job_id} in state {job.state}")
        if job.nodes > self.free_nodes:
            raise ValueError(
                f"job {job.job_id} needs {job.nodes} nodes, only "
                f"{self.free_nodes} free"
            )
        end = job.mark_started(now)
        self.free_nodes -= job.nodes
        self._running[job.job_id] = job
        if sanitize_enabled():
            self._sanitize_accounting(f"after starting job {job.job_id}")
        return end

    def finish(self, job: Job, now: float) -> None:
        """Complete ``job`` at time ``now`` and release its nodes."""
        if self._running.pop(job.job_id, None) is None:
            raise ValueError(f"job {job.job_id} is not running")
        job.mark_finished(now)
        self.free_nodes += job.nodes
        if self.free_nodes > self.capacity:
            raise AssertionError("free nodes exceeded capacity (double release?)")
        if sanitize_enabled():
            self._sanitize_accounting(f"after finishing job {job.job_id}")

    def _sanitize_accounting(self, context: str) -> None:
        """Debug-mode check: node accounting is conserved (see util.sanitize)."""
        require(
            0 <= self.free_nodes <= self.capacity,
            f"free-node count {self.free_nodes} outside [0, {self.capacity}] "
            f"{context}",
        )
        occupied = sum(j.nodes for j in self._running.values())
        require(
            self.free_nodes + occupied == self.capacity,
            f"node accounting broken {context}: {self.free_nodes} free + "
            f"{occupied} running != capacity {self.capacity}",
        )
