"""Priority-backfill baselines (paper §3.2).

:class:`~repro.backfill.engine.BackfillPolicy` is EASY-style priority
backfill with a configurable number of reservations (the paper uses one) and
a pluggable priority function — FCFS-backfill and LXF-backfill are the two
baselines every figure compares against.  :mod:`repro.backfill.variants`
adds the related policies the paper discusses: Selective-backfill,
Slack-based backfill and the utilization-packing Lookahead scheduler.
"""

from repro.backfill.engine import BackfillPolicy
from repro.backfill.priorities import (
    PRIORITIES,
    FcfsPriority,
    LxfPriority,
    LxfWPriority,
    PriorityFunction,
    SjfPriority,
)
from repro.backfill.variants import (
    LookaheadPolicy,
    SelectiveBackfillPolicy,
    SlackBackfillPolicy,
)

__all__ = [
    "BackfillPolicy",
    "conservative_backfill",
    "PriorityFunction",
    "FcfsPriority",
    "LxfPriority",
    "SjfPriority",
    "LxfWPriority",
    "PRIORITIES",
    "SelectiveBackfillPolicy",
    "SlackBackfillPolicy",
    "LookaheadPolicy",
]


def fcfs_backfill(runtime_source=None, reservations: int = 1) -> BackfillPolicy:
    """The paper's FCFS-backfill baseline.

    ``runtime_source``: ``True``/``None`` for R* = T, ``False`` for
    R* = R, or any :class:`~repro.predict.source.RuntimeSource`.
    """
    return BackfillPolicy(
        priority=FcfsPriority(),
        reservations=reservations,
        runtime_source=runtime_source,
    )


def lxf_backfill(runtime_source=None, reservations: int = 1) -> BackfillPolicy:
    """The paper's LXF-backfill baseline (largest slowdown first)."""
    return BackfillPolicy(
        priority=LxfPriority(),
        reservations=reservations,
        runtime_source=runtime_source,
    )


def conservative_backfill(runtime_source=None) -> BackfillPolicy:
    """Conservative backfill: *every* blocked job gets a reservation.

    The classic counterpart of EASY (one reservation): no backfill may
    delay any queued job, at the cost of backfill opportunities.  Realized
    here as a reservation count no queue will ever reach.
    """
    policy = BackfillPolicy(
        priority=FcfsPriority(),
        reservations=1_000_000_000,
        runtime_source=runtime_source,
    )
    policy.name = "Conservative-backfill"
    return policy
