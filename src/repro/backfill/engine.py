"""EASY-style priority backfill with a configurable number of reservations.

Jobs are considered in priority order.  The first ``reservations`` jobs that
cannot start now are each given a *scheduled start time* — the earliest time
enough nodes are free — committed onto the availability profile.  Any other
job is started immediately iff it fits on the profile *with the reservations
committed*, which is exactly the guarantee that backfilled jobs never delay
a reserved job.  The paper's simulations use a single reservation ("we do
not find more reservations to improve the performance", §4).
"""

from __future__ import annotations

from typing import Sequence

from repro.backfill.priorities import PriorityFunction
from repro.core.profile import AvailabilityProfile
from repro.predict.source import RuntimeSource, resolve_runtime_source
from repro.simulator.cluster import Cluster
from repro.simulator.job import Job
from repro.simulator.policy import RunningJob, SchedulingPolicy


class BackfillPolicy(SchedulingPolicy):
    """Priority backfill.

    Parameters
    ----------
    priority:
        Priority function; determines the policy's name (e.g.
        ``FCFS-backfill``).
    reservations:
        How many top-priority blocked jobs receive scheduled start times.
    runtime_source:
        How planning runtimes resolve: ``True``/``"actual"`` for R* = T
        (default), ``False``/``"requested"`` for R* = R, or any
        :class:`~repro.predict.source.RuntimeSource` (e.g. a predictor).
    """

    def __init__(
        self,
        priority: PriorityFunction,
        reservations: int = 1,
        runtime_source: RuntimeSource | bool | str | None = None,
    ) -> None:
        if reservations < 0:
            raise ValueError("reservations must be >= 0")
        self.priority = priority
        self.reservations = reservations
        self.runtime_source = resolve_runtime_source(runtime_source)
        suffix = "" if reservations == 1 else f"(res={reservations})"
        self.name = f"{priority.name}-backfill{suffix}"
        self.stats: dict[str, float] = {}
        self.reset()

    def reset(self) -> None:
        self.stats = {
            "decisions": 0,
            "backfilled_starts": 0,
            "priority_starts": 0,
            "max_queue_length": 0,
        }

    # ------------------------------------------------------------------
    def decide(
        self,
        now: float,
        waiting: Sequence[Job],
        running: Sequence[RunningJob],
        cluster: Cluster,
    ) -> list[Job]:
        self.stats["decisions"] += 1
        if not waiting:
            return []
        self.stats["max_queue_length"] = max(
            self.stats["max_queue_length"], len(waiting)
        )

        ordered = sorted(
            waiting, key=lambda j: self.priority(j, now, self.runtime_of(j))
        )
        profile = AvailabilityProfile.from_running(cluster.capacity, now, running)

        started: list[Job] = []
        reservations_made = 0
        blocked_seen = False
        for job in ordered:
            runtime = self.runtime_of(job)
            start = profile.earliest_start(job.nodes, runtime, now)
            if start <= now:
                profile.reserve(start, runtime, job.nodes)
                started.append(job)
                if blocked_seen:
                    self.stats["backfilled_starts"] += 1
                else:
                    self.stats["priority_starts"] += 1
            elif reservations_made < self.reservations:
                # Give this blocked job a scheduled start; committing it to
                # the profile is what protects it from later backfills.
                profile.reserve(start, runtime, job.nodes)
                reservations_made += 1
                blocked_seen = True
            else:
                blocked_seen = True
                # No reservation left: the job simply waits for a later
                # decision point.
        return started
