"""Priority functions for backfill scheduling.

Each priority is a callable object mapping ``(job, now, planning_runtime)``
to a sortable key — smaller keys mean higher priority.  The planning
runtime is the policy's resolved R* (actual, requested, or predicted), so
priorities stay agnostic of where estimates come from.  The keys always
end with ``(submit_time, job_id)`` so ordering is total and deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.simulator.job import Job
from repro.util.timeunits import HOUR, MINUTE


class PriorityFunction:
    """Base class; subclasses implement :meth:`key`."""

    name: str = "priority"

    def key(self, job: Job, now: float, runtime: float) -> tuple:
        raise NotImplementedError

    def __call__(self, job: Job, now: float, runtime: float) -> tuple:
        return self.key(job, now, runtime)


@dataclass(frozen=True)
class FcfsPriority(PriorityFunction):
    """First come, first served."""

    name: str = "FCFS"

    def key(self, job: Job, now: float, runtime: float) -> tuple:
        return (job.submit_time, job.job_id)


@dataclass(frozen=True)
class LxfPriority(PriorityFunction):
    """Largest (bounded) slowdown first.

    Slowdown is evaluated at ``now`` with the scheduler-visible runtime and
    the 1-minute floor, the same formula the lxf branching heuristic uses.
    """

    name: str = "LXF"
    floor: float = MINUTE

    def key(self, job: Job, now: float, runtime: float) -> tuple:
        denom = max(runtime, self.floor)
        slowdown = (now - job.submit_time + denom) / denom
        return (-slowdown, job.submit_time, job.job_id)


@dataclass(frozen=True)
class SjfPriority(PriorityFunction):
    """Shortest job first — known to starve long jobs (paper §3.2)."""

    name: str = "SJF"

    def key(self, job: Job, now: float, runtime: float) -> tuple:
        return (runtime, job.submit_time, job.job_id)


@dataclass(frozen=True)
class LxfWPriority(PriorityFunction):
    """LXF plus a small weight on the waiting time (paper's LXF&W).

    The wait term breaks extreme-slowdown dominance by short jobs, pulling
    long-waiting large jobs forward.  ``wait_weight`` is the priority added
    per hour of waiting.
    """

    name: str = "LXF&W"
    floor: float = MINUTE
    wait_weight: float = 0.02  # priority units per hour waited

    def key(self, job: Job, now: float, runtime: float) -> tuple:
        wait = now - job.submit_time
        denom = max(runtime, self.floor)
        slowdown = (wait + denom) / denom
        return (-(slowdown + self.wait_weight * wait / HOUR), job.submit_time, job.job_id)


PRIORITIES: dict[str, PriorityFunction] = {
    "fcfs": FcfsPriority(),
    "lxf": LxfPriority(),
    "sjf": SjfPriority(),
    "lxfw": LxfWPriority(),
}
