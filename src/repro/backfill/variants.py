"""Backfill variants reviewed in the paper (§3.2).

These are the "improved FCFS-backfill" relatives the paper positions itself
against: they lower average wait/slowdown but can hurt the maximum wait.
The paper reports that Selective-backfill behaves like LXF-backfill and
Lookahead like FCFS-backfill on the NCSA workloads; the implementations
here let the benchmarks re-check those claims.

Faithfulness notes (also recorded in DESIGN.md):

- :class:`SelectiveBackfillPolicy` follows Srinivasan et al. (JSSPP'02):
  jobs are freely backfillable until their expansion factor
  ``(wait + R*) / R*`` crosses a starvation threshold, after which they
  receive reservations.  The adaptive threshold variant uses the running
  average expansion factor of started jobs.
- :class:`SlackBackfillPolicy` is a simplified Talby–Feitelson scheduler:
  each job receives a deadline (its earliest start when first seen plus a
  slack proportional to its runtime); any start is allowed that keeps every
  queued job's earliest start within its deadline.
- :class:`LookaheadPolicy` is an LOS-style packer: behind the head
  reservation it selects, by dynamic programming, the backfill set that
  maximizes nodes in use now, subject to the shadow-time/extra-node budgets.
"""

from __future__ import annotations

from typing import Sequence

from repro.backfill.priorities import FcfsPriority, PriorityFunction
from repro.predict.source import RuntimeSource, resolve_runtime_source
from repro.core.profile import AvailabilityProfile
from repro.simulator.cluster import Cluster
from repro.simulator.job import Job
from repro.simulator.policy import RunningJob, SchedulingPolicy
from repro.util.timeunits import MINUTE

_EPS = 1e-6


class SelectiveBackfillPolicy(SchedulingPolicy):
    """Selective reservations: only starving jobs get guarantees.

    Parameters
    ----------
    threshold:
        Fixed expansion-factor threshold; ``None`` selects the adaptive
        variant (running mean expansion factor at start, min 1.0).
    """

    def __init__(
        self,
        threshold: float | None = None,
        runtime_source: RuntimeSource | bool | str | None = None,
    ) -> None:
        self.threshold = threshold
        self.runtime_source = resolve_runtime_source(runtime_source)
        kind = "adaptive" if threshold is None else f"xf>{threshold:g}"
        self.name = f"Selective-backfill({kind})"
        self.stats: dict[str, float] = {}
        self.reset()

    def reset(self) -> None:
        self._xfactor_sum = 0.0
        self._xfactor_count = 0
        self.stats = {"decisions": 0, "reserved_jobs": 0}

    def _xfactor(self, job: Job, now: float) -> float:
        denom = max(self.runtime_of(job), MINUTE)
        return (now - job.submit_time + denom) / denom

    def _current_threshold(self) -> float:
        if self.threshold is not None:
            return self.threshold
        if self._xfactor_count == 0:
            return 1.0
        return max(1.0, self._xfactor_sum / self._xfactor_count)

    def on_start(self, job: Job, now: float) -> None:
        self._xfactor_sum += self._xfactor(job, now)
        self._xfactor_count += 1

    def decide(
        self,
        now: float,
        waiting: Sequence[Job],
        running: Sequence[RunningJob],
        cluster: Cluster,
    ) -> list[Job]:
        self.stats["decisions"] += 1
        if not waiting:
            return []
        threshold = self._current_threshold()
        # Starving jobs first (largest expansion factor), then FCFS.
        ordered = sorted(
            waiting,
            key=lambda j: (-self._xfactor(j, now), j.submit_time, j.job_id),
        )
        profile = AvailabilityProfile.from_running(cluster.capacity, now, running)
        started: list[Job] = []
        for job in ordered:
            runtime = self.runtime_of(job)
            start = profile.earliest_start(job.nodes, runtime, now)
            if start <= now:
                profile.reserve(start, runtime, job.nodes)
                started.append(job)
            elif self._xfactor(job, now) >= threshold:
                # Starving: commit a reservation so backfills cannot delay it.
                profile.reserve(start, runtime, job.nodes)
                self.stats["reserved_jobs"] += 1
        return started


class SlackBackfillPolicy(SchedulingPolicy):
    """Slack-based backfill (simplified Talby–Feitelson).

    Every job, when first seen, is promised a deadline: its then-earliest
    start plus ``slack_factor`` times its (scheduler-visible) runtime.  A
    candidate may start now only if, with it committed, all other queued
    jobs can still be placed (in deadline order) without missing deadlines.
    """

    def __init__(
        self,
        slack_factor: float = 2.0,
        priority: PriorityFunction | None = None,
        runtime_source: RuntimeSource | bool | str | None = None,
    ) -> None:
        if slack_factor < 0:
            raise ValueError("slack_factor must be >= 0")
        self.slack_factor = slack_factor
        self.priority = priority or FcfsPriority()
        self.runtime_source = resolve_runtime_source(runtime_source)
        self.name = f"Slack-backfill(s={slack_factor:g},{self.priority.name})"
        self.stats: dict[str, float] = {}
        self.reset()

    def reset(self) -> None:
        self._deadlines: dict[int, float] = {}
        self.stats = {"decisions": 0, "deadline_blocks": 0}

    def _ensure_deadline(self, job: Job, profile: AvailabilityProfile, now: float) -> None:
        if job.job_id in self._deadlines:
            return
        runtime = self.runtime_of(job)
        est = profile.earliest_start(job.nodes, runtime, now)
        self._deadlines[job.job_id] = est + self.slack_factor * max(runtime, MINUTE)

    def _edf_misses(
        self,
        profile: AvailabilityProfile,
        others: list[Job],
        now: float,
    ) -> set[int]:
        """Job ids missing their deadline under greedy EDF placement."""
        scratch = profile.copy()
        misses: set[int] = set()
        for other in sorted(others, key=lambda j: self._deadlines[j.job_id]):
            runtime = self.runtime_of(other)
            start = scratch.earliest_start(other.nodes, runtime, now)
            if start > self._deadlines[other.job_id] + _EPS:
                misses.add(other.job_id)
            scratch.reserve(start, runtime, other.nodes)
        return misses

    def decide(
        self,
        now: float,
        waiting: Sequence[Job],
        running: Sequence[RunningJob],
        cluster: Cluster,
    ) -> list[Job]:
        self.stats["decisions"] += 1
        if not waiting:
            return []
        profile = AvailabilityProfile.from_running(cluster.capacity, now, running)
        for job in waiting:
            self._ensure_deadline(job, profile, now)
        ordered = sorted(
            waiting, key=lambda j: self.priority(j, now, self.runtime_of(j))
        )
        started: list[Job] = []
        pending = list(ordered)
        for job in ordered:
            runtime = self.runtime_of(job)
            if profile.earliest_start(job.nodes, runtime, now) > now:
                continue
            others = [j for j in pending if j is not job]
            # "No worse" rule: starting this job may not push any *currently
            # meetable* deadline past its promise.  Jobs whose deadlines are
            # already unmeetable (a congested stretch) cannot veto — they
            # would deadlock the whole queue otherwise.
            baseline_misses = self._edf_misses(profile, others, now)
            token = profile.reserve(now, runtime, job.nodes)
            new_misses = self._edf_misses(profile, others, now)
            if new_misses - baseline_misses:
                self.stats["deadline_blocks"] += 1
                profile.release(token)
            else:
                started.append(job)
                pending.remove(job)
        return started

    def on_finish(self, job: Job, now: float) -> None:
        self._deadlines.pop(job.job_id, None)


class LookaheadPolicy(SchedulingPolicy):
    """Lookahead backfill: pack the machine now via dynamic programming.

    The head of the FCFS queue receives the (single) reservation.  Among
    the remaining queued jobs, the policy selects the subset maximizing the
    number of nodes put to work immediately, subject to the two classic
    budgets: total free nodes now, and — for jobs whose run would cross the
    reservation's shadow time — the extra nodes left once the reserved job
    starts.
    """

    def __init__(
        self, runtime_source: RuntimeSource | bool | str | None = None
    ) -> None:
        self.runtime_source = resolve_runtime_source(runtime_source)
        self.name = "Lookahead"
        self.stats: dict[str, float] = {}
        self.reset()

    def reset(self) -> None:
        self.stats = {"decisions": 0, "dp_runs": 0}

    def decide(
        self,
        now: float,
        waiting: Sequence[Job],
        running: Sequence[RunningJob],
        cluster: Cluster,
    ) -> list[Job]:
        self.stats["decisions"] += 1
        if not waiting:
            return []
        ordered = sorted(waiting, key=lambda j: (j.submit_time, j.job_id))
        profile = AvailabilityProfile.from_running(cluster.capacity, now, running)

        started: list[Job] = []
        # Strict FCFS prefix: start queue-head jobs while they fit.
        idx = 0
        while idx < len(ordered):
            job = ordered[idx]
            runtime = self.runtime_of(job)
            if profile.earliest_start(job.nodes, runtime, now) <= now:
                profile.reserve(now, runtime, job.nodes)
                started.append(job)
                idx += 1
            else:
                break
        if idx >= len(ordered):
            return started

        # Reserve the blocked head job.
        head = ordered[idx]
        head_rt = self.runtime_of(head)
        shadow = profile.earliest_start(head.nodes, head_rt, now)
        profile.reserve(shadow, head_rt, head.nodes)

        free_now = profile.free_at(now)
        extra = profile.min_free(shadow, shadow + head_rt)
        candidates = [j for j in ordered[idx + 1 :] if j.nodes <= free_now]
        chosen = self._pack(candidates, now, shadow, free_now, extra)
        for job in chosen:
            runtime = self.runtime_of(job)
            if profile.earliest_start(job.nodes, runtime, now) <= now:
                profile.reserve(now, runtime, job.nodes)
                started.append(job)
        return started

    def _pack(
        self,
        candidates: list[Job],
        now: float,
        shadow: float,
        free_now: int,
        extra: int,
    ) -> list[Job]:
        """2-constraint 0/1 knapsack maximizing nodes in use now."""
        if not candidates or free_now <= 0:
            return []
        self.stats["dp_runs"] += 1
        items: list[tuple[Job, int, int]] = []  # (job, w_now, w_extra)
        for job in candidates:
            runtime = self.runtime_of(job)
            crosses = now + runtime > shadow + _EPS
            items.append((job, job.nodes, job.nodes if crosses else 0))

        # dp[a][b] = best nodes usable with budgets (a, b); parent pointers
        # for reconstruction.
        width = extra + 1
        best = [[0] * width for _ in range(free_now + 1)]
        take: list[list[list[int]]] = [
            [[] for _ in range(width)] for _ in range(free_now + 1)
        ]
        for item_idx, (job, w1, w2) in enumerate(items):
            for a in range(free_now, w1 - 1, -1):
                for b in range(extra, w2 - 1, -1):
                    cand = best[a - w1][b - w2] + job.nodes
                    if cand > best[a][b]:
                        best[a][b] = cand
                        take[a][b] = take[a - w1][b - w2] + [item_idx]
        sel = take[free_now][extra]
        return [items[i][0] for i in sel]
